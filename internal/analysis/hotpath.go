package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// HotFact marks a function annotated //fp:hotpath: it is a per-frame
// root, checked in its own package, so callers in other packages may
// call it without re-walking it.
type HotFact struct{}

// ColdFact marks a function annotated //fp:coldpath: it runs amortised
// (per window, per admission, per eviction batch), so the hot-path walk
// stops at its boundary.
type ColdFact struct{}

func (*HotFact) AFact()         {}
func (*HotFact) String() string { return "fp:hotpath" }

func (*ColdFact) AFact()         {}
func (*ColdFact) String() string { return "fp:coldpath" }

// HotPath is the fphotpath analyzer: it walks the static call graph
// from every //fp:hotpath-annotated function and reports work that has
// no business on a per-frame path — calls into a denylist of
// allocating/formatting/syscalling packages, wall-clock reads, fresh
// allocations (make/new/&composite, append growth of non-scratch
// slices, string conversions), interface boxing at call sites, and
// goroutine launches. Cross-package calls must target functions that
// are themselves //fp:hotpath (checked in their own package) or
// //fp:coldpath (amortised; the walk stops). The static pass is paired
// with scripts/escape_gate.sh, which pins the same roots at zero heap
// escapes via the compiler's escape analysis, and with the
// testing.AllocsPerRun test each annotation is required to name
// (test=...) — see TestHotpathAnnotationsBackedByAllocTests.
var HotPath = &analysis.Analyzer{
	Name:      "fphotpath",
	Doc:       "report allocation and denylisted calls reachable from //fp:hotpath roots",
	Run:       runHotPath,
	FactTypes: []analysis.Fact{(*HotFact)(nil), (*ColdFact)(nil)},
}

// hotDenyPkgs lists package-path prefixes that are never acceptable on
// a per-frame path: formatted output, logging, reflection, encoding,
// direct I/O and the reflect-based sort entry points.
var hotDenyPkgs = []string{
	"fmt", "log", "reflect", "os", "io", "bufio", "net",
	"encoding", "runtime/pprof", "runtime/trace", "testing",
}

// hotDenyFuncs lists individual denylisted functions in otherwise
// acceptable packages.
var hotDenyFuncs = map[string]string{
	"time.Now":         "wall-clock read",
	"time.Since":       "wall-clock read",
	"time.Until":       "wall-clock read",
	"time.Sleep":       "blocks the push goroutine",
	"time.After":       "allocates a timer",
	"time.Tick":        "allocates a ticker",
	"time.NewTimer":    "allocates a timer",
	"time.NewTicker":   "allocates a ticker",
	"sort.Sort":        "boxes through sort.Interface",
	"sort.Stable":      "boxes through sort.Interface",
	"sort.Slice":       "boxes and reflects; use slices.SortFunc",
	"sort.SliceStable": "boxes and reflects; use slices.SortFunc",
}

// hotRandPkgs: package-level functions draw from the global source —
// both nondeterministic and lock-contended.
var hotRandPkgs = map[string]bool{"math/rand": true, "math/rand/v2": true}

type hotChecker struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	lines map[*ast.File]lineIndex
	files map[*ast.FuncDecl]*ast.File

	checked map[*types.Func]bool
	queue   []hotWork
}

type hotWork struct {
	fn   *types.Func
	root string
}

func runHotPath(pass *analysis.Pass) (interface{}, error) {
	c := &hotChecker{
		pass:    pass,
		decls:   make(map[*types.Func]*ast.FuncDecl),
		lines:   make(map[*ast.File]lineIndex),
		files:   make(map[*ast.FuncDecl]*ast.File),
		checked: make(map[*types.Func]bool),
	}

	// Pass 1: index declarations, validate and export annotations.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c.decls[fn] = fd
			c.files[fd] = file
			if d, ok := funcDirective(fd, "hotpath"); ok {
				if d.Args["test"] == "" {
					pass.Report(analysis.Diagnostic{Pos: d.Pos,
						Message: "fp:hotpath annotation must name its zero-alloc test (test=TestName)"})
				}
				pass.ExportObjectFact(fn, &HotFact{})
			}
			if d, ok := funcDirective(fd, "coldpath"); ok {
				if d.Reason == "" {
					pass.Report(analysis.Diagnostic{Pos: d.Pos,
						Message: "fp:coldpath annotation requires a justification"})
				}
				pass.ExportObjectFact(fn, &ColdFact{})
			}
		}
	}

	// Pass 2: walk from every hot root declared in this package.
	for fn, fd := range c.decls {
		if _, ok := funcDirective(fd, "hotpath"); ok {
			c.enqueue(fn, fn.Name())
		}
	}
	for len(c.queue) > 0 {
		w := c.queue[0]
		c.queue = c.queue[1:]
		c.checkFunc(w.fn, w.root)
	}
	return nil, nil
}

func (c *hotChecker) enqueue(fn *types.Func, root string) {
	if c.checked[fn] {
		return
	}
	c.checked[fn] = true
	c.queue = append(c.queue, hotWork{fn: fn, root: root})
}

// lineIndexFor lazily builds the file's directive index.
func (c *hotChecker) lineIndexFor(fd *ast.FuncDecl) lineIndex {
	file := c.files[fd]
	ix, ok := c.lines[file]
	if !ok {
		ix = fileLines(c.pass.Fset, file)
		c.lines[file] = ix
	}
	return ix
}

func (c *hotChecker) report(pos token.Pos, root, format string, args ...interface{}) {
	c.pass.Report(analysis.Diagnostic{Pos: pos,
		Message: fmt.Sprintf("hot path (via %s): %s", root, fmt.Sprintf(format, args...))})
}

// checkFunc scans one function body reached from a hot root.
func (c *hotChecker) checkFunc(fn *types.Func, root string) {
	fd := c.decls[fn]
	if fd == nil || fd.Body == nil {
		return
	}
	ix := c.lineIndexFor(fd)
	roots := newRootInfo(c.pass.TypesInfo, fd)

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// Deferred recovery/cleanup closures run off the steady-state
			// path; walk named deferred callees but not deferred literals.
			if _, isLit := n.Call.Fun.(*ast.FuncLit); isLit {
				return false
			}
		case *ast.GoStmt:
			c.report(n.Pos(), root, "launches a goroutine per call")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := n.X.(*ast.CompositeLit); isLit {
					if _, ok := ix.at(c.pass.Fset, n.Pos(), "allocok"); !ok {
						c.report(n.Pos(), root, "heap-escaping composite literal (&T{...}); annotate //fp:allocok if amortised")
					}
				}
			}
		case *ast.CallExpr:
			c.checkCall(n, fd, ix, roots, root)
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// checkCall classifies one call expression in a hot function.
func (c *hotChecker) checkCall(call *ast.CallExpr, fd *ast.FuncDecl, ix lineIndex, roots *rootInfo, root string) {
	info := c.pass.TypesInfo
	fset := c.pass.Fset

	// Builtins and conversions first.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			c.checkBuiltin(b.Name(), call, ix, roots, root)
			return
		}
	case *ast.SelectorExpr:
		_ = fun
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion. String/byte-slice conversions copy; conversions to
		// interface types box.
		to := tv.Type
		if len(call.Args) == 1 {
			from := info.Types[call.Args[0]].Type
			if isStringByteConv(to, from) && info.Types[call.Args[0]].Value == nil {
				if _, ok := ix.at(fset, call.Pos(), "allocok"); !ok {
					c.report(call.Pos(), root, "string/[]byte conversion copies per call")
				}
			}
			if types.IsInterface(to) && from != nil && !types.IsInterface(from) && !pointerShaped(from) {
				if _, ok := ix.at(fset, call.Pos(), "allocok"); !ok {
					c.report(call.Pos(), root, "interface conversion boxes %s", from)
				}
			}
		}
		return
	}

	callee := calleeOf(info, call)
	if callee == nil {
		// Dynamic call through a func value: nothing to resolve
		// statically; the escape gate and AllocsPerRun tests cover it.
		c.checkBoxingArgs(call, ix, root)
		return
	}
	if callee.Name() == "panic" {
		return
	}

	pkg := callee.Pkg()
	if pkg == nil {
		return // builtins like error.Error
	}
	path := pkg.Path()

	if pkg == c.pass.Pkg {
		// Same package: stop at annotated boundaries, else descend.
		if calleeDecl, ok := c.decls[callee]; ok {
			if _, cold := funcDirective(calleeDecl, "coldpath"); cold {
				return
			}
			if _, hot := funcDirective(calleeDecl, "hotpath"); hot {
				return // a root of its own; walked separately
			}
			c.checkBoxingArgs(call, ix, root)
			c.enqueue(callee, root)
			return
		}
		return
	}

	// Cross-package: annotated callees are fine (hot ones are checked in
	// their own package, cold ones are amortised boundaries).
	if c.pass.ImportObjectFact(callee, new(HotFact)) || c.pass.ImportObjectFact(callee, new(ColdFact)) {
		c.checkBoxingArgs(call, ix, root)
		return
	}

	qname := path + "." + callee.Name()
	if reason, ok := hotDenyFuncs[qname]; ok {
		if _, wc := ix.at(fset, call.Pos(), "wallclock"); wc && strings.HasPrefix(reason, "wall-clock") {
			return // acknowledged stats-timing read
		}
		c.report(call.Pos(), root, "call to %s (%s)", qname, reason)
		return
	}
	if hotRandPkgs[path] && callee.Type().(*types.Signature).Recv() == nil {
		c.report(call.Pos(), root, "global %s draw (nondeterministic and contended)", qname)
		return
	}
	for _, deny := range hotDenyPkgs {
		if path == deny || strings.HasPrefix(path, deny+"/") {
			c.report(call.Pos(), root, "call into denylisted package %s (%s)", path, qname)
			return
		}
	}
	if isStdlib(path) {
		c.checkBoxingArgs(call, ix, root)
		return
	}
	// A module-internal (or third-party) function with no annotation:
	// the zero-alloc contract cannot be tracked across the boundary.
	c.report(call.Pos(), root, "call into unvetted function %s — annotate it //fp:hotpath (and back it with an AllocsPerRun test) or //fp:coldpath", qname)
}

// checkBuiltin handles make/new/append allocation heuristics.
func (c *hotChecker) checkBuiltin(name string, call *ast.CallExpr, ix lineIndex, roots *rootInfo, root string) {
	switch name {
	case "make", "new":
		// Amortised warm-up — make stored into a caller-owned scratch
		// (field of a parameter/receiver or package-level state) — is the
		// sanctioned pattern; anything else is a per-call allocation.
		if roots.assignedToOwned(call) {
			return
		}
		if _, ok := ix.at(c.pass.Fset, call.Pos(), "allocok"); ok {
			return
		}
		c.report(call.Pos(), root, "%s allocates per call (grow caller-owned scratch instead, or annotate //fp:allocok)", name)
	case "append":
		if len(call.Args) == 0 {
			return
		}
		if roots.exprOwned(call.Args[0]) {
			return // growth of caller-owned scratch, amortised
		}
		if _, ok := ix.at(c.pass.Fset, call.Pos(), "allocok"); ok {
			return
		}
		c.report(call.Pos(), root, "append grows a non-scratch slice (unhinted growth allocates)")
	}
}

// checkBoxingArgs flags concrete, non-pointer-shaped arguments passed to
// interface parameters — each such call boxes.
func (c *hotChecker) checkBoxingArgs(call *ast.CallExpr, ix lineIndex, root string) {
	info := c.pass.TypesInfo
	sigTV, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := sigTV.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		atv := info.Types[arg]
		at := atv.Type
		if at == nil || types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if atv.Value != nil {
			continue // constants: either static data or staticuint64s
		}
		if _, ok := ix.at(c.pass.Fset, arg.Pos(), "allocok"); ok {
			continue
		}
		c.report(arg.Pos(), root, "argument boxes %s into interface %s", at, pt)
	}
}

// rootInfo is a flow-insensitive map from local slice/alloc variables to
// whether their contents root in caller-owned storage (parameters,
// receiver fields, package-level scratch). It sanctions the two scratch
// idioms — `s.buf = make(...)` warm-ups and `x := s.buf[:0]; x =
// append(x, ...)` growth — while flagging fresh per-call allocation.
type rootInfo struct {
	info      *types.Info
	owned     map[types.Object]bool // params, receiver, package-level vars
	assign    map[types.Object][]ast.Expr
	memo      map[types.Object]int8 // 0 unknown, 1 owned, 2 fresh
	resolving map[types.Object]bool
	stores    map[*ast.CallExpr]bool
}

func newRootInfo(info *types.Info, fd *ast.FuncDecl) *rootInfo {
	r := &rootInfo{
		info:      info,
		owned:     make(map[types.Object]bool),
		assign:    make(map[types.Object][]ast.Expr),
		memo:      make(map[types.Object]int8),
		resolving: make(map[types.Object]bool),
		stores:    make(map[*ast.CallExpr]bool),
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, n := range f.Names {
				r.owned[info.Defs[n]] = true
			}
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			for _, n := range f.Names {
				r.owned[info.Defs[n]] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			rhs := as.Rhs[i]
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj := r.objOf(id); obj != nil {
					r.assign[obj] = append(r.assign[obj], rhs)
				}
			}
			// make()/new() stored directly into owned storage is the
			// warm-up idiom; remember the call so checkBuiltin skips it.
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				if r.lhsOwned(lhs) {
					r.stores[call] = true
				}
			}
		}
		return true
	})
	return r
}

func (r *rootInfo) objOf(id *ast.Ident) types.Object {
	if obj := r.info.Defs[id]; obj != nil {
		return obj
	}
	return r.info.Uses[id]
}

// lhsOwned reports whether an assignment target is caller-owned: a
// selector/index chain based on a parameter, receiver or package-level
// variable, or such a variable itself being re-assigned from owned
// storage elsewhere.
func (r *rootInfo) lhsOwned(lhs ast.Expr) bool {
	base := baseIdent(lhs)
	if base == nil {
		return false
	}
	obj := r.objOf(base)
	if obj == nil {
		return false
	}
	if _, isSel := ast.Unparen(lhs).(*ast.Ident); isSel {
		// Plain `x = make(...)`: owned only if x itself roots in owned
		// storage (e.g. a dereferenced pointer parameter — not a local).
		return r.objOwned(obj, 0)
	}
	return r.owned[obj] || isPackageLevel(obj) || r.objOwned(obj, 0)
}

// exprOwned reports whether an expression's backing storage roots in
// caller-owned state.
func (r *rootInfo) exprOwned(e ast.Expr) bool {
	base := baseIdent(e)
	if base == nil {
		return false
	}
	obj := r.objOf(base)
	if obj == nil {
		return false
	}
	if r.owned[obj] || isPackageLevel(obj) {
		return true
	}
	// A bare local: owned iff every assignment to it roots in owned
	// storage (flow-insensitive, so one fresh assignment poisons it).
	if _, isIdent := ast.Unparen(e).(*ast.Ident); isIdent {
		return r.objOwned(obj, 0)
	}
	// x.f / x[i] where x is a local pointing at owned storage.
	return r.objOwned(obj, 0)
}

// Ownership classes. Neutral arises only on a self-referential append
// edge (`x = append(x, ...)`), which preserves whatever root x
// otherwise has: the other assignments decide, and a variable with
// nothing but neutral evidence grows fresh storage.
const (
	classFresh int8 = iota
	classOwned
	classNeutral
)

func (r *rootInfo) objOwned(obj types.Object, depth int) bool {
	return r.objClass(obj, depth) == classOwned
}

func (r *rootInfo) objClass(obj types.Object, depth int) int8 {
	if depth > 10 {
		return classFresh
	}
	if v, ok := r.memo[obj]; ok {
		if v == 1 {
			return classOwned
		}
		return classFresh
	}
	if r.resolving[obj] {
		return classNeutral
	}
	r.resolving[obj] = true
	defer delete(r.resolving, obj)
	sawOwned := false
	for _, rhs := range r.assign[obj] {
		switch r.rhsClass(rhs, depth+1) {
		case classFresh:
			r.memo[obj] = 2
			return classFresh
		case classOwned:
			sawOwned = true
		}
	}
	if !sawOwned {
		// No assignments (a bare `var x []T`), or only self-append
		// cycles: nothing roots it in caller-owned storage.
		r.memo[obj] = 2
		return classFresh
	}
	r.memo[obj] = 1
	return classOwned
}

// rhsClass classifies an assignment source. append(x, ...) takes the
// class of x; make/new/composites and unknown calls are fresh.
func (r *rootInfo) rhsClass(e ast.Expr, depth int) int8 {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := r.info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(e.Args) > 0 {
				return r.rhsClass(e.Args[0], depth+1)
			}
		}
		return classFresh
	case *ast.SliceExpr:
		return r.rhsClass(e.X, depth+1)
	case *ast.IndexExpr:
		return r.rhsClass(e.X, depth+1)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return r.rhsClass(e.X, depth+1)
		}
		return classFresh
	case *ast.StarExpr:
		return r.rhsClass(e.X, depth+1)
	case *ast.SelectorExpr:
		return r.rhsClass(e.X, depth+1)
	case *ast.Ident:
		obj := r.objOf(e)
		if obj == nil {
			return classFresh
		}
		if r.owned[obj] || isPackageLevel(obj) {
			return classOwned
		}
		return r.objClass(obj, depth+1)
	default:
		return classFresh
	}
}

// assignedToOwned reports whether this make/new call's result is stored
// directly into caller-owned storage.
func (r *rootInfo) assignedToOwned(call *ast.CallExpr) bool { return r.stores[call] }

// baseIdent returns the base identifier of a selector/index/slice chain.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

func isPackageLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// calleeOf resolves a call's static callee, or nil for dynamic calls.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
					return nil // dynamic dispatch
				}
				return fn
			}
			return nil
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// pointerShaped reports whether boxing a value of this type into an
// interface stores the word directly (no allocation).
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isStringByteConv(to, from types.Type) bool {
	if from == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isBytes := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		e, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
	}
	return (isStr(to) && isBytes(from)) || (isBytes(to) && isStr(from))
}

// isStdlib reports whether a package path is part of the standard
// library (no domain-qualified first element).
func isStdlib(path string) bool {
	first, _, _ := strings.Cut(path, "/")
	return !strings.Contains(first, ".")
}
