package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// SinkSafe is the fpsinksafe analyzer. Engine event sinks run
// synchronously on the pushing goroutine (serial engine) or the merger
// (sharded engine): a sink that blocks stalls the whole pipeline, and a
// sink that calls back into the engine can deadlock on the stats mutex.
// The analyzer finds every sink implementation — methods named
// HandleEvent taking a single Event parameter, and functions converted
// to a SinkFunc type — and walks it (transitively, within its package)
// for:
//
//   - channel sends outside a select with a default case (unbounded
//     blocking on a slow consumer),
//   - sync.Mutex/sync.RWMutex acquisition and calls back into
//     Engine/Sharded/Trainer methods,
//   - direct I/O (os/net/bufio file and socket calls, fmt.Fprint*),
//     and time.Sleep.
//
// A sink that is *documented* to block (the ChannelSink's lossless
// mode, the CLI printers) carries //fp:mayblock with a justification on
// the function, which exempts it.
var SinkSafe = &analysis.Analyzer{
	Name: "fpsinksafe",
	Doc:  "report blocking operations in engine event sinks",
	Run:  runSinkSafe,
}

var sinkDenyPkgs = []string{"os", "net", "bufio", "syscall"}

type sinkChecker struct {
	pass    *analysis.Pass
	decls   map[*types.Func]*ast.FuncDecl
	lines   map[*ast.File]lineIndex
	files   map[*ast.FuncDecl]*ast.File
	checked map[*types.Func]bool
}

func runSinkSafe(pass *analysis.Pass) (interface{}, error) {
	c := &sinkChecker{
		pass:    pass,
		decls:   make(map[*types.Func]*ast.FuncDecl),
		lines:   make(map[*ast.File]lineIndex),
		files:   make(map[*ast.FuncDecl]*ast.File),
		checked: make(map[*types.Func]bool),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					c.decls[fn] = fd
					c.files[fd] = file
				}
			}
		}
	}

	// Sink methods: HandleEvent(ev Event) with no results.
	for fn, fd := range c.decls {
		if fn.Name() == "HandleEvent" && isSinkSignature(fn) {
			c.checkSink(fn, fd, fn.FullName())
		}
	}
	// SinkFunc conversions: SinkFunc(f) or SinkFunc(func(ev Event){...}).
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			named, ok := tv.Type.(interface{ Obj() *types.TypeName })
			if !ok || named.Obj().Name() != "SinkFunc" {
				return true
			}
			switch arg := ast.Unparen(call.Args[0]).(type) {
			case *ast.FuncLit:
				c.checkFuncLit(arg, file, "SinkFunc literal")
			default:
				if fn := calleeObj(pass.TypesInfo, arg); fn != nil {
					if fd, ok := c.decls[fn]; ok {
						c.checkSink(fn, fd, fn.FullName())
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// isSinkSignature matches func (T) HandleEvent(ev Event) — the engine
// Sink shape (matched structurally so the analyzer stays
// project-invariant and fixture-testable).
func isSinkSignature(fn *types.Func) bool {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil || sig.Params().Len() != 1 || sig.Results().Len() != 0 {
		return false
	}
	pt := sig.Params().At(0).Type()
	named, ok := pt.(interface{ Obj() *types.TypeName })
	return ok && named.Obj().Name() == "Event" && types.IsInterface(pt)
}

func (c *sinkChecker) lineIndexFor(file *ast.File) lineIndex {
	ix, ok := c.lines[file]
	if !ok {
		ix = fileLines(c.pass.Fset, file)
		c.lines[file] = ix
	}
	return ix
}

func (c *sinkChecker) checkSink(fn *types.Func, fd *ast.FuncDecl, label string) {
	if c.checked[fn] {
		return
	}
	c.checked[fn] = true
	if d, ok := funcDirective(fd, "mayblock"); ok {
		if d.Reason == "" {
			c.pass.Report(analysis.Diagnostic{Pos: d.Pos,
				Message: "fp:mayblock annotation requires a justification"})
		}
		return
	}
	if fd.Body == nil {
		return
	}
	c.checkBody(fd.Body, c.lineIndexFor(c.files[fd]), label)
}

func (c *sinkChecker) checkFuncLit(lit *ast.FuncLit, file *ast.File, label string) {
	ix := c.lineIndexFor(file)
	if _, ok := ix.at(c.pass.Fset, lit.Pos(), "mayblock"); ok {
		return
	}
	c.checkBody(lit.Body, ix, label)
}

func (c *sinkChecker) report(pos token.Pos, label, format string, args ...interface{}) {
	c.pass.Report(analysis.Diagnostic{Pos: pos,
		Message: fmt.Sprintf("sink %s: %s (sinks run on the engine's emit goroutine; annotate //fp:mayblock if blocking is the documented contract)", label, fmt.Sprintf(format, args...))})
}

func (c *sinkChecker) checkBody(body *ast.BlockStmt, ix lineIndex, label string) {
	// Sends inside a select that has a default case are non-blocking.
	guarded := make(map[*ast.SendStmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cl := range sel.Body.List {
			if cl.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		ast.Inspect(sel, func(m ast.Node) bool {
			if s, ok := m.(*ast.SendStmt); ok {
				guarded[s] = true
			}
			return true
		})
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !guarded[n] {
				c.report(n.Pos(), label, "channel send without a select/default guard")
			}
		case *ast.CallExpr:
			c.checkSinkCall(n, ix, label)
		}
		return true
	})
}

func (c *sinkChecker) checkSinkCall(call *ast.CallExpr, ix lineIndex, label string) {
	callee := calleeOf(c.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	sig := callee.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type().String()
		switch callee.Name() {
		case "Lock", "RLock":
			if strings.HasSuffix(rt, "sync.Mutex") || strings.HasSuffix(rt, "sync.RWMutex") {
				c.report(call.Pos(), label, "acquires %s", strings.TrimPrefix(rt, "*"))
				return
			}
		}
		base := rt
		base = strings.TrimPrefix(base, "*")
		if i := strings.LastIndexByte(base, '.'); i >= 0 {
			pkgPath := base[:i]
			typ := base[i+1:]
			if (typ == "Engine" || typ == "Sharded" || typ == "Trainer") && strings.HasSuffix(pkgPath, "engine") {
				c.report(call.Pos(), label, "calls back into %s.%s (stats-mutex deadlock risk)", typ, callee.Name())
				return
			}
		}
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return
	}
	path := pkg.Path()
	qname := path + "." + callee.Name()
	if qname == "time.Sleep" {
		c.report(call.Pos(), label, "time.Sleep stalls the event stream")
		return
	}
	if path == "fmt" && strings.HasPrefix(callee.Name(), "Fprint") {
		c.report(call.Pos(), label, "direct I/O via %s", qname)
		return
	}
	for _, deny := range sinkDenyPkgs {
		if path == deny || strings.HasPrefix(path, deny+"/") {
			c.report(call.Pos(), label, "direct I/O via %s", qname)
			return
		}
	}
	// Descend into same-package helpers so I/O behind one hop is caught.
	if pkg == c.pass.Pkg {
		if fd, ok := c.decls[callee]; ok {
			if !c.checked[callee] {
				c.checked[callee] = true
				if _, ok := funcDirective(fd, "mayblock"); ok {
					return
				}
				if fd.Body != nil {
					c.checkBody(fd.Body, c.lineIndexFor(c.files[fd]), label)
				}
			}
		}
	}
}

// calleeObj resolves an arbitrary expression naming a function.
func calleeObj(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}
