// Package analysis holds dot11fp's project-invariant static-analysis
// suite: five golang.org/x/tools/go/analysis analyzers that turn the
// system's headline guarantees — zero allocations per frame on the push
// paths, event streams bit-identical between the serial and sharded
// engines at every shard count, non-blocking verdict taps, fsync'd
// checkpoint chains, no mixed atomic/plain field access — from
// hand-written runtime tests into compile-time checks that run on every
// package of every PR.
//
// The analyzers are driven by //fp: source annotations (see Directive)
// rather than hard-coded symbol lists, so a new per-frame root, a new
// deterministic package or a new documented-blocking sink is one
// annotation away from full coverage, and every exception to a rule is
// a grep-able, justified line in the diff that introduced it.
//
// Run the suite with `go run ./cmd/fpvet ./...`; CI runs it on every
// push, together with scripts/escape_gate.sh (the compiler
// escape-analysis gate over the same //fp:hotpath roots).
package analysis

import "golang.org/x/tools/go/analysis"

// All is the fpvet suite, in report order.
var All = []*analysis.Analyzer{
	HotPath,
	Determinism,
	SinkSafe,
	AtomicField,
	CloseCheck,
}
