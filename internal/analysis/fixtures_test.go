package analysis_test

import (
	"testing"

	"golang.org/x/tools/go/analysis"

	fpanalysis "dot11fp/internal/analysis"
	"dot11fp/internal/analysis/testkit"
)

// Each fixture package under testdata/src carries one deliberate
// violation of every diagnostic class its analyzer reports, plus the
// sanctioned idioms and annotated escapes that must stay silent.

func TestHotPathFixtures(t *testing.T) {
	t.Parallel()
	// hotpathdep is analyzed first so its //fp:hotpath///fp:coldpath
	// facts are exported before the importing package is walked.
	testkit.Run(t, "testdata", []*analysis.Analyzer{fpanalysis.HotPath},
		"fpfix.test/hotpathdep", "fpfix.test/hotpath")
}

func TestDeterminismFixtures(t *testing.T) {
	t.Parallel()
	testkit.Run(t, "testdata", []*analysis.Analyzer{fpanalysis.Determinism},
		"fpfix.test/determinism", "fpfix.test/determinismoff")
}

func TestSinkSafeFixtures(t *testing.T) {
	t.Parallel()
	testkit.Run(t, "testdata", []*analysis.Analyzer{fpanalysis.SinkSafe},
		"fpfix.test/engine")
}

func TestAtomicFieldFixtures(t *testing.T) {
	t.Parallel()
	testkit.Run(t, "testdata", []*analysis.Analyzer{fpanalysis.AtomicField},
		"fpfix.test/atomicfield")
}

func TestCloseCheckFixtures(t *testing.T) {
	t.Parallel()
	testkit.Run(t, "testdata", []*analysis.Analyzer{fpanalysis.CloseCheck},
		"fpfix.test/closecheck")
}
