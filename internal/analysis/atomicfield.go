package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// AtomicField is the fpatomicfield analyzer: a variable or struct field
// that is touched through sync/atomic function calls (atomic.AddUint64,
// atomic.LoadInt64, ...) anywhere in the package must never be read or
// written plainly elsewhere — the mixed-access class of data race that
// the chaos soak can only catch probabilistically, and the race
// detector only when both accesses happen to overlap in a run.
//
// The fix is either to route every access through sync/atomic, or —
// preferred, and what this repo does throughout — to declare the field
// with one of the typed atomics (atomic.Uint64, atomic.Pointer[T], ...)
// so plain access is unrepresentable. Fields of typed atomic types are
// exempt by construction; struct copies of them are already caught by
// vet's copylocks.
var AtomicField = &analysis.Analyzer{
	Name: "fpatomicfield",
	Doc:  "report plain accesses to variables also accessed via sync/atomic",
	Run:  runAtomicField,
}

func runAtomicField(pass *analysis.Pass) (interface{}, error) {
	// Pass 1: every `&x` handed to a sync/atomic function marks x as an
	// atomic variable; remember the sanctioned &x nodes.
	atomicVars := make(map[types.Object]string) // var -> example op
	sanctioned := make(map[*ast.UnaryExpr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
				return true
			}
			if !strings.HasPrefix(callee.Name(), "Add") && !strings.HasPrefix(callee.Name(), "Load") &&
				!strings.HasPrefix(callee.Name(), "Store") && !strings.HasPrefix(callee.Name(), "Swap") &&
				!strings.HasPrefix(callee.Name(), "CompareAndSwap") && !strings.HasPrefix(callee.Name(), "Or") &&
				!strings.HasPrefix(callee.Name(), "And") {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if obj := referentOf(pass.TypesInfo, un.X); obj != nil {
					if _, seen := atomicVars[obj]; !seen {
						atomicVars[obj] = "atomic." + callee.Name()
					}
					sanctioned[un] = true
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil, nil
	}

	// Pass 2: any other use of those variables is a mixed access.
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			var obj types.Object
			switch e := n.(type) {
			case *ast.SelectorExpr:
				obj = pass.TypesInfo.Uses[e.Sel]
			case *ast.Ident:
				// Only flag identifiers that are not the Sel of a
				// selector (handled above) and resolve to a var.
				if len(stack) >= 2 {
					if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.Sel == e {
						return true
					}
				}
				obj = pass.TypesInfo.Uses[e]
			default:
				return true
			}
			op, isAtomic := atomicVars[obj]
			if !isAtomic {
				return true
			}
			// Field declarations and sanctioned &x-in-atomic-call uses
			// are fine.
			for _, anc := range stack {
				if un, ok := anc.(*ast.UnaryExpr); ok && sanctioned[un] {
					return true
				}
				if _, ok := anc.(*ast.Field); ok {
					return true
				}
			}
			pass.Reportf(n.Pos(), "plain access to %s, which is accessed via %s elsewhere in this package (mixed atomic/plain access races; use the typed atomics so this cannot compile)", objName(obj), op)
			return true
		})
	}
	return nil, nil
}

// referentOf resolves the variable a unary & expression takes the
// address of: a plain identifier or the field of a selector chain.
func referentOf(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

func objName(obj types.Object) string {
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return "field " + v.Name()
	}
	return obj.Name()
}
