// Package testkit runs the fpvet analyzers over fixture packages and
// checks their diagnostics against expectations written in the fixture
// source, in the style of golang.org/x/tools/go/analysis/analysistest
// (which the vendored x/tools subset does not include).
//
// Expectations are trailing comments of the form
//
//	x := leak() // want "regexp" "another regexp"
//
// where each quoted (or backquoted) pattern must match the message of
// exactly one diagnostic reported on that line, and every diagnostic
// must be matched by some pattern. `// want+N "regexp"` anchors the
// expectation N lines below the comment instead — needed for
// diagnostics reported at an //fp: directive itself (a line a trailing
// want comment cannot share). Fixtures live under
// testdata/src/<import-path>, mirroring the analysistest layout; import
// paths are registered with the driver as source fixtures, so fixtures
// may import one another (cross-package fact flow is exercised for
// real, not mocked).
package testkit

import (
	"fmt"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"dot11fp/internal/analysis/driver"
)

// wantRe matches one quoted or backquoted pattern in a want comment.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// wantLineRe matches the comment-level marker, with an optional +N
// line offset.
var wantLineRe = regexp.MustCompile(`^//\s*want(\+\d+)?\s+(.*)$`)

// expectation is one pattern awaiting a diagnostic on (file, line).
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	source  string // the literal as written, for failure messages
	matched bool
}

// Run analyzes the fixture packages under testdata/src and reports any
// mismatch between diagnostics and want comments as test failures.
func Run(t *testing.T, testdata string, analyzers []*analysis.Analyzer, pkgs ...string) {
	t.Helper()

	abs, err := filepath.Abs(testdata)
	if err != nil {
		t.Fatal(err)
	}
	l := driver.New(".")
	dirs := make([]string, len(pkgs))
	for i, p := range pkgs {
		dirs[i] = filepath.Join(abs, "src", filepath.FromSlash(p))
		l.AddFixture(p, dirs[i])
	}
	var deps []string
	for _, dir := range dirs {
		deps = append(deps, directImports(t, dir)...)
	}
	if err := l.EnsureListed(deps); err != nil {
		t.Fatalf("listing fixture dependencies: %v", err)
	}

	diags, err := driver.Run(l, pkgs, analyzers)
	if err != nil {
		t.Fatalf("analysis failed: %v", err)
	}

	var wants []*expectation
	for _, dir := range dirs {
		ws, err := collectWants(dir)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, ws...)
	}

	for _, d := range diags {
		if !claim(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic at %s:%d: %s (%s)",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("no diagnostic at %s:%d matching %s",
				filepath.Base(w.file), w.line, w.source)
		}
	}
}

// claim marks the first unmatched expectation covering this diagnostic.
func claim(wants []*expectation, file string, line int, message string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.pattern.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every fixture file in dir for want comments.
func collectWants(dir string) ([]*expectation, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parsing fixtures in %s: %v", dir, err)
	}
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := wantLineRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					offset := 0
					if m[1] != "" {
						offset, _ = strconv.Atoi(m[1][1:])
					}
					pos := fset.Position(c.Pos())
					for _, lit := range wantRe.FindAllString(m[2], -1) {
						pat, err := unquotePattern(lit)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v",
								pos.Filename, pos.Line, lit, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want regexp %s: %v",
								pos.Filename, pos.Line, lit, err)
						}
						wants = append(wants, &expectation{
							file: pos.Filename, line: pos.Line + offset,
							pattern: re, source: lit,
						})
					}
				}
			}
		}
	}
	return wants, nil
}

func unquotePattern(lit string) (string, error) {
	if strings.HasPrefix(lit, "`") {
		return strings.Trim(lit, "`"), nil
	}
	return strconv.Unquote(lit)
}

// directImports returns the import paths of every fixture file in dir,
// so the loader can list export data for their stdlib closure.
func directImports(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, parser.ImportsOnly)
	if err != nil {
		t.Fatalf("parsing fixture imports in %s: %v", dir, err)
	}
	var out []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, imp := range file.Imports {
				out = append(out, strings.Trim(imp.Path.Value, `"`))
			}
		}
	}
	return out
}
