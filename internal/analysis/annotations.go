package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// A Directive is one parsed //fp: source annotation. The general form is
//
//	//fp:NAME key=value ... free-form justification
//
// where key=value fields (if any) come first and everything after the
// last field is the human-readable reason. The suite's annotations:
//
//	//fp:hotpath test=TestName  — function is a per-frame root; its call
//	                              graph is walked by fphotpath and the
//	                              named testing.AllocsPerRun test pins it
//	                              at zero allocations at runtime.
//	//fp:coldpath reason        — function is reached from a hot root but
//	                              runs amortised (per window, per sender
//	                              admission, per eviction batch); the
//	                              walk stops here.
//	//fp:wallclock reason       — this line's (or function's) wall-clock
//	                              read is an acknowledged, output-neutral
//	                              exception (stats timing).
//	//fp:unordered reason       — this map iteration is order-insensitive
//	                              (or sorted before anything escapes).
//	//fp:mayblock reason        — this sink is documented as blocking.
//	//fp:allocok reason         — this allocation in a hot path is an
//	                              acknowledged amortised exception.
//	//fp:closeok reason         — this discarded Close/Sync error is an
//	                              acknowledged no-data-at-risk exception.
//	//fp:deterministic          — package-level (in the package doc):
//	                              opts the package into fpdeterminism.
//
// Every escape annotation requires a non-empty reason; the analyzers
// report annotations without one, so an exception can never be silent.
type Directive struct {
	Name   string
	Args   map[string]string
	Reason string
	Pos    token.Pos
}

// parseDirective parses one comment line, returning ok=false when it is
// not an //fp: directive.
func parseDirective(c *ast.Comment) (Directive, bool) {
	text, found := strings.CutPrefix(c.Text, "//fp:")
	if !found {
		return Directive{}, false
	}
	d := Directive{Pos: c.Pos()}
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return Directive{}, false
	}
	d.Name = fields[0]
	rest := fields[1:]
	for len(rest) > 0 {
		k, v, isKV := strings.Cut(rest[0], "=")
		if !isKV || k == "" || strings.ContainsAny(k, " \t") {
			break
		}
		if d.Args == nil {
			d.Args = make(map[string]string)
		}
		d.Args[k] = v
		rest = rest[1:]
	}
	d.Reason = strings.Join(rest, " ")
	return d, true
}

// groupDirectives parses every directive in a comment group.
func groupDirectives(cg *ast.CommentGroup) []Directive {
	if cg == nil {
		return nil
	}
	var out []Directive
	for _, c := range cg.List {
		if d, ok := parseDirective(c); ok {
			out = append(out, d)
		}
	}
	return out
}

// funcDirective returns the named directive from a function's doc
// comment, if present.
func funcDirective(decl *ast.FuncDecl, name string) (Directive, bool) {
	for _, d := range groupDirectives(decl.Doc) {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// lineIndex maps source lines to the directives written on them, for
// line-scoped annotations (//fp:wallclock, //fp:allocok, //fp:closeok,
// //fp:unordered). A directive governs its own line and, when written
// as a standalone comment line, the line below it.
type lineIndex map[int][]Directive

// fileLines indexes every //fp: directive in a file by line.
func fileLines(fset *token.FileSet, file *ast.File) lineIndex {
	ix := make(lineIndex)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if d, ok := parseDirective(c); ok {
				line := fset.Position(c.Pos()).Line
				ix[line] = append(ix[line], d)
			}
		}
	}
	return ix
}

// at reports the named directive governing pos: on the same line, or on
// the line immediately above.
func (ix lineIndex) at(fset *token.FileSet, pos token.Pos, name string) (Directive, bool) {
	line := fset.Position(pos).Line
	for _, d := range ix[line] {
		if d.Name == name {
			return d, true
		}
	}
	for _, d := range ix[line-1] {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// packageHasDirective reports whether any file's package doc carries the
// named directive (package-level opt-ins like //fp:deterministic).
func packageHasDirective(files []*ast.File, name string) bool {
	for _, f := range files {
		for _, d := range groupDirectives(f.Doc) {
			if d.Name == name {
				return true
			}
		}
	}
	return false
}

// HotPathFuncs returns the function declarations annotated
// //fp:hotpath, in file order. cmd/fpvet -hotpath-ranges prints their
// source ranges for scripts/escape_gate.sh, which intersects them with
// the compiler's escape-analysis output.
func HotPathFuncs(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if _, ok := funcDirective(fd, "hotpath"); ok {
					out = append(out, fd)
				}
			}
		}
	}
	return out
}
