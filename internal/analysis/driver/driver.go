// Package driver is an in-process loader/runner for go/analysis
// analyzers: the minimal multichecker that cmd/fpvet is built on.
//
// The usual drivers — multichecker (via go/packages) and unitchecker
// (via `go vet -vettool`) — live outside the vendored go/analysis
// subset this repo carries, so the driver does the two jobs itself:
//
//   - Loading: `go list -e -export -deps -json` enumerates the target
//     packages and the export-data files of everything they import.
//     Target packages are type-checked from source (in dependency
//     order, sharing one FileSet and importer, so a symbol is the same
//     types.Object in every pass that sees it); imports resolve
//     through compiler export data, which works offline because the go
//     command builds it locally.
//   - Running: analyzers run per package in dependency order, with an
//     in-memory fact store — object identity is stable across the run,
//     so facts need no serialization round-trip.
//
// The same loader backs the analysistest-style fixture harness
// (internal/analysis/testkit): fixtures register as source packages via
// AddFixture and resolve their stdlib imports through the same
// export-data path.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Package is one source-checked package.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	GoFiles []string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Module  *analysis.Module

	fset *token.FileSet
}

// Fset returns the FileSet the package was parsed into.
func (p *Package) Fset() *token.FileSet { return p.fset }

type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Module     *struct{ Path, GoVersion string }
	Error      *struct{ Err string }
}

// Loader loads packages from source (roots, fixtures) or export data
// (everything they import), sharing one FileSet and type universe.
type Loader struct {
	Fset *token.FileSet

	dir       string
	listed    map[string]*listedPkg
	importMap map[string]string
	fixtures  map[string]string // import path -> source dir
	pkgs      map[string]*Package
	checking  map[string]bool
	gc        types.Importer
}

// New returns a loader running the go command in dir.
func New(dir string) *Loader {
	l := &Loader{
		Fset:      token.NewFileSet(),
		dir:       dir,
		listed:    make(map[string]*listedPkg),
		importMap: make(map[string]string),
		fixtures:  make(map[string]string),
		pkgs:      make(map[string]*Package),
		checking:  make(map[string]bool),
	}
	l.gc = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		lp := l.listed[path]
		if lp == nil || lp.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(lp.Export)
	})
	return l
}

// goList runs `go list -e -export -deps -json` over patterns, recording
// every package (and its export data) in the loader.
func (l *Loader) goList(patterns ...string) ([]*listedPkg, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(out)
	var all []*listedPkg
	for {
		lp := new(listedPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		all = append(all, lp)
		l.listed[lp.ImportPath] = lp
		for from, to := range lp.ImportMap {
			l.importMap[from] = to
		}
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return all, nil
}

// LoadPatterns lists patterns and returns the matched (non-dependency)
// package paths, ready for LoadSource, in listing order.
func (l *Loader) LoadPatterns(patterns ...string) ([]string, error) {
	all, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	var roots []string
	for _, lp := range all {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Name == "" && len(lp.GoFiles) == 0 {
			continue
		}
		roots = append(roots, lp.ImportPath)
	}
	return roots, nil
}

// AddFixture registers a source directory as package importPath — the
// testkit's entry point. Stdlib imports of fixtures must be made
// available with EnsureListed.
func (l *Loader) AddFixture(importPath, dir string) {
	l.fixtures[importPath] = dir
}

// EnsureListed makes the named import paths (typically the stdlib
// closure of fixture imports) importable via export data.
func (l *Loader) EnsureListed(paths []string) error {
	var missing []string
	for _, p := range paths {
		if p == "unsafe" || l.listed[p] != nil || l.fixtures[p] != "" {
			continue
		}
		missing = append(missing, p)
	}
	if len(missing) == 0 {
		return nil
	}
	_, err := l.goList(missing...)
	return err
}

// Import implements types.Importer over the loader's world: fixtures
// and module roots from source, everything else from export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if to, ok := l.importMap[path]; ok {
		path = to
	}
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if _, isFixture := l.fixtures[path]; isFixture {
		p, err := l.LoadSource(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if lp := l.listed[path]; lp != nil && lp.Export == "" && !lp.DepOnly {
		// A module root imported by another root: check it from source
		// so object identity (and with it fact identity) is shared.
		p, err := l.LoadSource(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.gc.Import(path)
}

// LoadSource parses and type-checks one package from source. Roots come
// from go list metadata, fixtures from AddFixture directories.
func (l *Loader) LoadSource(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.checking[importPath] {
		return nil, fmt.Errorf("import cycle through %q", importPath)
	}
	l.checking[importPath] = true
	defer delete(l.checking, importPath)

	var dir string
	var goFiles []string
	var mod *analysis.Module
	if fdir, ok := l.fixtures[importPath]; ok {
		dir = fdir
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				goFiles = append(goFiles, e.Name())
			}
		}
	} else if lp := l.listed[importPath]; lp != nil {
		dir = lp.Dir
		goFiles = lp.GoFiles
		if lp.Module != nil {
			mod = &analysis.Module{Path: lp.Module.Path, GoVersion: lp.Module.GoVersion}
		}
	} else {
		return nil, fmt.Errorf("package %q not listed (run LoadPatterns or AddFixture first)", importPath)
	}
	sort.Strings(goFiles)

	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("package %q has no Go files", importPath)
	}

	// Resolve imports up front so fixture stdlib dependencies get listed
	// lazily (roots are already fully listed by -deps).
	if len(l.fixtures) > 0 {
		var imps []string
		for _, f := range files {
			for _, imp := range f.Imports {
				imps = append(imps, strings.Trim(imp.Path.Value, `"`))
			}
		}
		if err := l.EnsureListed(imps); err != nil {
			return nil, err
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, 3)
		for i, e := range typeErrs {
			if i == 3 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(typeErrs)-3))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("type-checking %s:\n  %s", importPath, strings.Join(msgs, "\n  "))
	}
	p := &Package{
		PkgPath: importPath,
		Name:    tpkg.Name(),
		Dir:     dir,
		GoFiles: goFiles,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Module:  mod,
		fset:    l.Fset,
	}
	l.pkgs[importPath] = p
	return p, nil
}

// Diagnostic is one analyzer finding, position-resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// factStore is the in-memory fact table: object identity is stable
// across the run (one loader, one type universe), so facts are plain
// map entries rather than gob round-trips.
type factStore struct {
	obj map[objKey]analysis.Fact
	pkg map[pkgKey]analysis.Fact
}

type objKey struct {
	obj types.Object
	typ reflect.Type
}
type pkgKey struct {
	pkg *types.Package
	typ reflect.Type
}

func newFactStore() *factStore {
	return &factStore{obj: make(map[objKey]analysis.Fact), pkg: make(map[pkgKey]analysis.Fact)}
}

func copyFact(dst, src analysis.Fact) {
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
}

// Run loads each root package from source and applies the analyzers in
// dependency order (packages topologically, analyzers by Requires),
// returning position-sorted diagnostics.
func Run(l *Loader, roots []string, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	order, err := topoOrder(l, roots)
	if err != nil {
		return nil, err
	}
	aorder, err := requiresOrder(analyzers)
	if err != nil {
		return nil, err
	}
	facts := newFactStore()
	var diags []Diagnostic
	for _, path := range order {
		pkg, err := l.LoadSource(path)
		if err != nil {
			return nil, err
		}
		results := make(map[*analysis.Analyzer]interface{})
		for _, a := range aorder {
			pass := newPass(a, pkg, facts, results, &diags)
			res, err := a.Run(pass)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, path, err)
			}
			results[a] = res
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags, nil
}

func newPass(a *analysis.Analyzer, pkg *Package, facts *factStore, results map[*analysis.Analyzer]interface{}, diags *[]Diagnostic) *analysis.Pass {
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       pkg.Fset(),
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.Info,
		TypesSizes: types.SizesFor("gc", runtime.GOARCH),
		Module:     pkg.Module,
		ResultOf:   results,
		ReadFile:   os.ReadFile,
	}
	pass.Report = func(d analysis.Diagnostic) {
		*diags = append(*diags, Diagnostic{
			Analyzer: a.Name,
			Pos:      pass.Fset.Position(d.Pos),
			Message:  d.Message,
		})
	}
	pass.ImportObjectFact = func(obj types.Object, fact analysis.Fact) bool {
		if f, ok := facts.obj[objKey{obj, reflect.TypeOf(fact)}]; ok {
			copyFact(fact, f)
			return true
		}
		return false
	}
	pass.ExportObjectFact = func(obj types.Object, fact analysis.Fact) {
		facts.obj[objKey{obj, reflect.TypeOf(fact)}] = fact
	}
	pass.ImportPackageFact = func(p *types.Package, fact analysis.Fact) bool {
		if f, ok := facts.pkg[pkgKey{p, reflect.TypeOf(fact)}]; ok {
			copyFact(fact, f)
			return true
		}
		return false
	}
	pass.ExportPackageFact = func(fact analysis.Fact) {
		facts.pkg[pkgKey{pkg.Types, reflect.TypeOf(fact)}] = fact
	}
	pass.AllObjectFacts = func() []analysis.ObjectFact {
		var out []analysis.ObjectFact
		for k, f := range facts.obj {
			out = append(out, analysis.ObjectFact{Object: k.obj, Fact: f})
		}
		return out
	}
	pass.AllPackageFacts = func() []analysis.PackageFact {
		var out []analysis.PackageFact
		for k, f := range facts.pkg {
			out = append(out, analysis.PackageFact{Package: k.pkg, Fact: f})
		}
		return out
	}
	return pass
}

// topoOrder orders the root set so that every root comes after the
// roots it imports (facts flow forward).
func topoOrder(l *Loader, roots []string) ([]string, error) {
	rootSet := make(map[string]bool, len(roots))
	for _, r := range roots {
		rootSet[r] = true
	}
	var order []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("import cycle through %q", path)
		case 2:
			return nil
		}
		state[path] = 1
		var imports []string
		if lp := l.listed[path]; lp != nil {
			imports = lp.Imports
		} else if dir, ok := l.fixtures[path]; ok {
			imports = fixtureImports(dir)
		}
		for _, imp := range imports {
			if to, ok := l.importMap[imp]; ok {
				imp = to
			}
			if rootSet[imp] || l.fixtures[imp] != "" {
				if err := visit(imp); err != nil {
					return err
				}
			}
		}
		state[path] = 2
		order = append(order, path)
		return nil
	}
	for _, r := range roots {
		if err := visit(r); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// fixtureImports parses just the import clauses of a fixture directory.
func fixtureImports(dir string) []string {
	var out []string
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	fset := token.NewFileSet()
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ImportsOnly)
		if err != nil {
			continue
		}
		for _, imp := range f.Imports {
			out = append(out, strings.Trim(imp.Path.Value, `"`))
		}
	}
	return out
}

// requiresOrder sorts analyzers so prerequisites run first.
func requiresOrder(analyzers []*analysis.Analyzer) ([]*analysis.Analyzer, error) {
	var order []*analysis.Analyzer
	state := make(map[*analysis.Analyzer]int)
	var visit func(*analysis.Analyzer) error
	visit = func(a *analysis.Analyzer) error {
		switch state[a] {
		case 1:
			return fmt.Errorf("analyzer dependency cycle through %s", a.Name)
		case 2:
			return nil
		}
		state[a] = 1
		for _, req := range a.Requires {
			if err := visit(req); err != nil {
				return err
			}
		}
		state[a] = 2
		order = append(order, a)
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return order, nil
}
