// Package hotpathdep provides annotated and unannotated callees for
// the fphotpath cross-package fact tests: facts exported here must be
// visible when fpfix.test/hotpath is analyzed afterwards.
package hotpathdep

var state int

// Unvetted has no annotation: hot callers must not cross into it.
func Unvetted() { state++ }

// Cold is an amortised boundary; the hot-path walk stops here.
//
//fp:coldpath fixture: amortised per-window work
func Cold() { state += 2 }

// Hot is a root of its own, checked in this package.
//
//fp:hotpath test=TestFixtureDepAllocs
func Hot() { state += 3 }
