// Package determinism exercises fpdeterminism: map-order escapes and
// wall-clock reads in a package that opted into bit-identical output.
//
//fp:deterministic
package determinism

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

type ev struct{ k string }

func emitEvent(e ev) { _ = e }

func leaks(m map[string]int, ch chan ev, w io.Writer) {
	for k := range m {
		ch <- ev{k} // want `channel send inside map iteration leaks map order`
	}
	for k := range m {
		emitEvent(ev{k}) // want `emitEvent call inside map iteration leaks map order`
	}
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to a slice declared outside the loop records map order`
	}
	_ = keys
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `Fprintf call inside map iteration leaks map order`
	}
}

func fine(m map[string]int) int {
	total := 0
	for _, v := range m { // order-insensitive fold: no diagnostic
		total += v
	}
	sorted := make([]string, 0, len(m))
	for k := range m { //fp:unordered collected keys are sorted below
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	return total
}

func badAnnotation(m map[string]int) {
	// want+1 `fp:unordered annotation requires a justification`
	//fp:unordered
	for k := range m {
		_ = k
	}
}

func clock() int64 {
	t := time.Now() // want `wall-clock read \(time.Now\) in a deterministic package`
	s := time.Now() //fp:wallclock stats timing; never serialized
	_ = s
	_ = rand.Int() // want `global math/rand.Int draw in a deterministic package`
	return t.UnixNano()
}
