// Package determinismoff has no //fp:deterministic opt-in: the same
// leaks that fire in fpfix.test/determinism must stay silent here.
package determinismoff

import "time"

func leaks(m map[string]int, ch chan string) int64 {
	for k := range m {
		ch <- k
	}
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	_ = keys
	return time.Now().UnixNano()
}
