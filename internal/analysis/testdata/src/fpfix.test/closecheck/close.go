// Package closecheck exercises fpclosecheck: discarded Close/Sync
// error returns, the visible `_ =` discard, and the //fp:closeok
// escape for defers.
package closecheck

type file struct{}

func (file) Close() error { return nil }
func (file) Sync() error  { return nil }

// noErr's Close returns nothing: not a discardable error.
type noErr struct{}

func (noErr) Close() {}

func bad(f file) {
	f.Close()       // want `Close error discarded`
	defer f.Close() // want `deferred Close error discarded`
	go f.Sync()     // want `go'd Sync error discarded`
}

func good(f file, n noErr) error {
	_ = f.Close() // visible, reviewable discard
	n.Close()
	defer f.Close() //fp:closeok fixture: read-only handle, the error carries no data risk
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func badAnnotation(f file) {
	// want+1 `fp:closeok annotation requires a justification`
	//fp:closeok
	f.Close()
}
