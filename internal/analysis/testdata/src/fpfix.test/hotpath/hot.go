// Package hotpath exercises fphotpath: denylisted calls, allocation
// heuristics, interface boxing, the sanctioned scratch idioms and the
// cross-package annotation contract.
package hotpath

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"fpfix.test/hotpathdep"
)

type scratch struct {
	buf   []byte
	freqs []float64
}

type proc struct {
	sc   scratch
	vals []int
}

func eat(v interface{}) { _ = v }

func (p *proc) flush() {}

//fp:hotpath test=TestFixturePushAllocs
func (p *proc) Push(b []byte) {
	_ = time.Now()   // want `call to time.Now \(wall-clock read\)`
	t0 := time.Now() //fp:wallclock stats timing, output-neutral
	_ = t0
	time.Sleep(time.Microsecond)                                             // want `call to time.Sleep \(blocks the push goroutine\)`
	_ = fmt.Sprintf("%d", len(b))                                            // want `call into denylisted package fmt \(fmt.Sprintf\)`
	_ = rand.Intn(8)                                                         // want `global math/rand.Intn draw`
	go p.flush()                                                             // want `launches a goroutine per call`
	sort.Slice(p.vals, func(i, j int) bool { return p.vals[i] < p.vals[j] }) // want `call to sort.Slice \(boxes and reflects; use slices.SortFunc\)`

	tmp := make([]byte, 16) // want `make allocates per call`
	_ = tmp
	big := make([]byte, 1024) //fp:allocok fixture: amortised warm-up buffer
	_ = big
	p.sc.buf = make([]byte, 0, 64) // warm-up into owned scratch: sanctioned

	x := p.sc.freqs[:0]
	x = append(x, 1.5) // growth of caller-owned scratch: sanctioned
	_ = x

	out := []int{}
	out = append(out, 1) // want `append grows a non-scratch slice`
	_ = out
	var bare []int
	bare = append(bare, 2) // want `append grows a non-scratch slice`
	_ = bare

	q := &scratch{} // want `heap-escaping composite literal`
	_ = q
	r := &scratch{} //fp:allocok fixture: amortised admission record
	_ = r

	s := string(b) // want `string/\[\]byte conversion copies per call`
	_ = s
	_ = interface{}(len(b)) // want `interface conversion boxes int`
	eat(len(b))             // want `argument boxes int into interface`

	hotpathdep.Unvetted() // want `call into unvetted function fpfix.test/hotpathdep.Unvetted`
	hotpathdep.Cold()     // annotated //fp:coldpath in its own package: fine
	hotpathdep.Hot()      // annotated //fp:hotpath in its own package: fine

	defer func() { fmt.Println("recovery path") }() // deferred literal: off the steady-state path
}

// want+2 `fp:hotpath annotation must name its zero-alloc test`
//
//fp:hotpath
func (p *proc) badRoot() {}

// want+2 `fp:coldpath annotation requires a justification`
//
//fp:coldpath
func (p *proc) badCold() {}
