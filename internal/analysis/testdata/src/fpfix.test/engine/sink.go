// Package engine exercises fpsinksafe: blocking operations in event
// sinks, the select/default guard, the //fp:mayblock escape, one-hop
// helper I/O and the engine-callback deadlock check (this fixture's
// import path ends in "engine" so the callback heuristic applies).
package engine

import (
	"fmt"
	"os"
	"sync"
	"time"
)

// Event mirrors the engine's event interface shape.
type Event interface{ Kind() string }

// SinkFunc mirrors the engine's func adapter.
type SinkFunc func(Event)

// Engine mirrors the engine type the callback check guards.
type Engine struct{ n int }

func (e *Engine) Stats() int { return e.n }

type blockingSink struct{ ch chan Event }

func (s *blockingSink) HandleEvent(ev Event) {
	s.ch <- ev // want `channel send without a select/default guard`
}

type droppingSink struct{ ch chan Event }

func (s *droppingSink) HandleEvent(ev Event) {
	select {
	case s.ch <- ev: // guarded by default: non-blocking
	default:
	}
}

type lockingSink struct{ mu sync.Mutex }

func (s *lockingSink) HandleEvent(ev Event) {
	s.mu.Lock() // want `acquires sync.Mutex`
	defer s.mu.Unlock()
}

type printingSink struct{}

func (printingSink) HandleEvent(ev Event) {
	fmt.Fprintf(os.Stderr, "%v\n", ev) // want `direct I/O via fmt.Fprintf`
}

type sleepySink struct{}

func (sleepySink) HandleEvent(ev Event) {
	time.Sleep(time.Millisecond) // want `time.Sleep stalls the event stream`
}

type callbackSink struct{ eng *Engine }

func (s *callbackSink) HandleEvent(ev Event) {
	_ = s.eng.Stats() // want `calls back into Engine.Stats`
}

type indirectSink struct{}

func (indirectSink) HandleEvent(ev Event) {
	writeOut(ev)
}

// writeOut hides the I/O one call away; the walk must still find it.
func writeOut(ev Event) {
	f, _ := os.Create("out.txt") // want `direct I/O via os.Create`
	_ = f
	_ = ev
}

type losslessSink struct{ ch chan Event }

// HandleEvent blocks by contract.
//
//fp:mayblock fixture: lossless delivery is the documented contract
func (s *losslessSink) HandleEvent(ev Event) {
	s.ch <- ev
}

type undocumentedSink struct{ ch chan Event }

// want+2 `fp:mayblock annotation requires a justification`
//
//fp:mayblock
func (s *undocumentedSink) HandleEvent(ev Event) {
	s.ch <- ev
}

func adapters(ch chan Event) {
	_ = SinkFunc(func(ev Event) {
		ch <- ev // want `channel send without a select/default guard`
	})
	//fp:mayblock fixture: conversion-site annotation covers the literal
	_ = SinkFunc(func(ev Event) {
		ch <- ev
	})
	_ = SinkFunc(namedBlocking)
}

func namedBlocking(ev Event) {
	time.Sleep(time.Second) // want `time.Sleep stalls the event stream`
}
