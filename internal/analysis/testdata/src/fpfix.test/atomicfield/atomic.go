// Package atomicfield exercises fpatomicfield: any variable touched
// through sync/atomic calls must never be accessed plainly, while the
// typed atomics are exempt by construction.
package atomicfield

import "sync/atomic"

type counters struct {
	frames uint64
	drops  uint64
	typed  atomic.Uint64
}

func (c *counters) bump() {
	atomic.AddUint64(&c.frames, 1) // sanctioned &x inside the atomic call
	c.typed.Add(1)                 // typed atomic: plain access unrepresentable
}

func (c *counters) read() uint64 {
	return c.frames + // want `plain access to field frames`
		atomic.LoadUint64(&c.drops) + c.typed.Load()
}

func (c *counters) reset() {
	c.drops = 0 // want `plain access to field drops`
}

var hits uint64

func bumpHits() { atomic.AddUint64(&hits, 1) }

func readHits() uint64 {
	return hits // want `plain access to hits`
}
