package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	fpanalysis "dot11fp/internal/analysis"
	"dot11fp/internal/analysis/driver"
)

// moduleRoot is this test's path back to the repository root.
const moduleRoot = "../.."

var hotpathDirective = regexp.MustCompile(`(?m)^\s*//fp:hotpath\s+test=(\S+)`)

// repoGoFiles walks the module for .go files, skipping vendor/,
// testdata/ and hidden directories.
func repoGoFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(moduleRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "vendor" || name == "testdata" || strings.HasPrefix(name, ".") && name != "." && name != ".." {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestHotpathAnnotationsBackedByAllocTests enforces the second half of
// the //fp:hotpath contract: the static walk (fphotpath) and the escape
// gate pin the code shape, but only a testing.AllocsPerRun test pins
// the runtime behavior. Every annotation's test=TestName must resolve
// to a test function somewhere in the repo whose body actually calls
// AllocsPerRun.
func TestHotpathAnnotationsBackedByAllocTests(t *testing.T) {
	t.Parallel()
	files := repoGoFiles(t)

	// Pass 1: every Test function that calls testing.AllocsPerRun.
	allocTests := make(map[string]bool)
	fset := token.NewFileSet()
	for _, path := range files {
		if !strings.HasSuffix(path, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !strings.HasPrefix(fd.Name.Name, "Test") || fd.Body == nil {
				continue
			}
			uses := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "AllocsPerRun" {
					uses = true
				}
				return true
			})
			if uses {
				allocTests[fd.Name.Name] = true
			}
		}
	}
	if len(allocTests) == 0 {
		t.Fatal("found no AllocsPerRun tests in the repository")
	}

	// Pass 2: every //fp:hotpath annotation names one of them.
	found := 0
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range hotpathDirective.FindAllSubmatch(src, -1) {
			found++
			name := string(m[1])
			if !allocTests[name] {
				t.Errorf("%s: //fp:hotpath names test=%s, but no test function with that name calls testing.AllocsPerRun", path, name)
			}
		}
	}
	if found == 0 {
		t.Fatal("found no //fp:hotpath annotations in the repository")
	}
}

// TestRepoFpvetClean runs the full fpvet suite over every package in
// the module, exactly as CI's invariant-lint step does: the tree must
// stay diagnostic-free.
func TestRepoFpvetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	t.Parallel()
	l := driver.New(moduleRoot)
	roots, err := l.LoadPatterns("./...")
	if err != nil {
		t.Fatalf("listing module packages: %v", err)
	}
	diags, err := driver.Run(l, roots, fpanalysis.All)
	if err != nil {
		t.Fatalf("analysis failed: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
