package cmdutil

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dot11fp"
	"dot11fp/internal/dot11"
)

// sliceSource replays a fixed record slice as a RecordSource.
type sliceSource struct {
	recs []dot11fp.Record
	i    int
}

func (s *sliceSource) Next() (dot11fp.Record, error) {
	if s.i >= len(s.recs) {
		return dot11fp.Record{}, io.EOF
	}
	s.i++
	return s.recs[s.i-1], nil
}

// trainRecords synthesises a stream with two dense senders spanning
// spanSec seconds.
func trainRecords(t *testing.T, spanSec int) []dot11fp.Record {
	t.Helper()
	a, err := dot11fp.ParseAddr("02:00:00:00:00:01")
	if err != nil {
		t.Fatal(err)
	}
	b, err := dot11fp.ParseAddr("02:00:00:00:00:02")
	if err != nil {
		t.Fatal(err)
	}
	var recs []dot11fp.Record
	for i := 0; i < spanSec*100; i++ {
		sender, size := a, 200
		if i%2 == 1 {
			sender, size = b, 900
		}
		recs = append(recs, dot11fp.Record{
			T: int64(i) * 10_000, Sender: sender,
			Size: size, RateMbps: 24, FCSOK: true,
		})
	}
	return recs
}

// singleParam is the single-parameter training shorthand of the tests.
var singleParam = []dot11fp.Param{dot11fp.ParamSize}

func TestTrainFromStream(t *testing.T) {
	t.Parallel()
	recs := trainRecords(t, 120)
	refs, pending, err := TrainFromStream(&sliceSource{recs: recs}, time.Minute, singleParam, dot11fp.MeasureCosine)
	if err != nil {
		t.Fatal(err)
	}
	if refs.DB == nil || refs.Len() != 2 {
		t.Fatalf("trained %d references, want 2 (db=%v)", refs.Len(), refs.DB)
	}
	if pending == nil {
		t.Fatal("no boundary record returned")
	}
	// The boundary record is the first past the prefix: nothing inside
	// the prefix may leak into monitoring, nothing past it into training.
	if cut := recs[0].T + time.Minute.Microseconds(); pending.T < cut {
		t.Fatalf("boundary record at %d is inside the %d prefix", pending.T, cut)
	}
	// A parameter list trains a fused ensemble over the same prefix.
	fused, _, err := TrainFromStream(&sliceSource{recs: recs}, time.Minute,
		[]dot11fp.Param{dot11fp.ParamSize, dot11fp.ParamRate}, dot11fp.MeasureCosine)
	if err != nil {
		t.Fatal(err)
	}
	if fused.Ens == nil || !fused.Multi() || fused.Len() != 2 {
		t.Fatalf("fused training: multi=%v len=%d", fused.Multi(), fused.Len())
	}
	if got := fused.Configs(); len(got) != 2 || got[0].Param != dot11fp.ParamSize || got[1].Param != dot11fp.ParamRate {
		t.Fatalf("fused configs = %v", got)
	}
}

func TestTrainFromStreamErrors(t *testing.T) {
	t.Parallel()
	cases := map[string]struct {
		recs []dot11fp.Record
		want string
	}{
		"empty stream":     {nil, "training prefix"},
		"truncated stream": {trainRecords(t, 30), "training prefix"},
	}
	for name, tc := range cases {
		_, _, err := TrainFromStream(&sliceSource{recs: tc.recs}, time.Minute, singleParam, dot11fp.MeasureCosine)
		if err == nil {
			t.Errorf("%s: no error", name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}

// TestParseParams pins the -param comma syntax.
func TestParseParams(t *testing.T) {
	t.Parallel()
	got, err := ParseParams("rate,size,iat")
	if err != nil {
		t.Fatal(err)
	}
	want := []dot11fp.Param{dot11fp.ParamRate, dot11fp.ParamSize, dot11fp.ParamInterArrival}
	if len(got) != len(want) {
		t.Fatalf("ParseParams = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ParseParams[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got, err := ParseParams(" size "); err != nil || len(got) != 1 || got[0] != dot11fp.ParamSize {
		t.Fatalf("single padded name: %v, %v", got, err)
	}
	for _, bad := range []string{"", "size,", "size,size", "size,bogus", ",iat"} {
		if _, err := ParseParams(bad); err == nil {
			t.Errorf("ParseParams(%q) accepted", bad)
		}
	}
}

func TestParseMergeMode(t *testing.T) {
	t.Parallel()
	if m, err := ParseMergeMode("time"); err != nil || m != dot11fp.MergeByTime {
		t.Fatalf("time: %v, %v", m, err)
	}
	if m, err := ParseMergeMode("arrival"); err != nil || m != dot11fp.MergeArrival {
		t.Fatalf("arrival: %v, %v", m, err)
	}
	if _, err := ParseMergeMode("chronological"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestEnrollFlagsValidate is the table-driven flag-validation test for
// the shared -enroll cluster.
func TestEnrollFlagsValidate(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name  string
		flags EnrollFlags
		ok    bool
	}{
		{"disabled default", EnrollFlags{Enroll: false, Windows: 1}, true},
		{"enabled default horizon", EnrollFlags{Enroll: true, Windows: 1}, true},
		{"enabled multi-window", EnrollFlags{Enroll: true, Windows: 5}, true},
		{"zero horizon", EnrollFlags{Enroll: true, Windows: 0}, false},
		{"negative horizon", EnrollFlags{Enroll: true, Windows: -2}, false},
		{"horizon without enroll", EnrollFlags{Enroll: false, Windows: 3}, false},
	}
	for _, tc := range cases {
		if err := tc.flags.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestEnrollFlagsNewTrainer(t *testing.T) {
	t.Parallel()
	cfgs := []dot11fp.Config{dot11fp.DefaultConfig(dot11fp.ParamSize)}
	f := EnrollFlags{Enroll: true, Windows: 3}
	cold, err := f.NewTrainer(cfgs, dot11fp.MeasureCosine, References{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats().Refs != 0 {
		t.Fatalf("cold trainer starts with %d refs", cold.Stats().Refs)
	}
	seed, _, err := TrainFromStream(&sliceSource{recs: trainRecords(t, 120)}, time.Minute, singleParam, dot11fp.MeasureCosine)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := f.NewTrainer(cfgs, dot11fp.MeasureCosine, seed)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats().Refs != seed.Len() {
		t.Fatalf("warm trainer has %d refs, want %d", warm.Stats().Refs, seed.Len())
	}
	// Fused flavours: cold ensemble trainer, and a warm one from an
	// ensemble seed.
	fusedCfgs := []dot11fp.Config{
		dot11fp.DefaultConfig(dot11fp.ParamSize),
		dot11fp.DefaultConfig(dot11fp.ParamRate),
	}
	fusedCold, err := f.NewTrainer(fusedCfgs, dot11fp.MeasureCosine, References{})
	if err != nil {
		t.Fatal(err)
	}
	if fusedCold.Ensemble() == nil {
		t.Fatal("fused cold trainer is not an ensemble trainer")
	}
	fusedSeed, _, err := TrainFromStream(&sliceSource{recs: trainRecords(t, 120)}, time.Minute,
		[]dot11fp.Param{dot11fp.ParamSize, dot11fp.ParamRate}, dot11fp.MeasureCosine)
	if err != nil {
		t.Fatal(err)
	}
	fusedWarm, err := f.NewTrainer(fusedCfgs, dot11fp.MeasureCosine, fusedSeed)
	if err != nil {
		t.Fatal(err)
	}
	if fusedWarm.Stats().Refs != fusedSeed.Len() {
		t.Fatalf("fused warm trainer has %d refs, want %d", fusedWarm.Stats().Refs, fusedSeed.Len())
	}
}

// TestDatabaseFileRoundTrip covers SaveDatabaseFile/LoadDatabaseFile:
// codec selection by extension, codec sniffing on load, and atomic
// replacement of an existing checkpoint.
func TestDatabaseFileRoundTrip(t *testing.T) {
	t.Parallel()
	refs, _, err := TrainFromStream(&sliceSource{recs: trainRecords(t, 120)}, time.Minute, singleParam, dot11fp.MeasureCosine)
	if err != nil {
		t.Fatal(err)
	}
	seed := refs.DB
	dir := t.TempDir()
	for _, name := range []string{"ref.json", "ref.db"} {
		path := filepath.Join(dir, name)
		// Twice: the second save must atomically replace the first.
		for i := 0; i < 2; i++ {
			if err := SaveDatabaseFile(path, seed); err != nil {
				t.Fatalf("%s save %d: %v", name, i, err)
			}
		}
		loaded, err := LoadDatabaseFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if loaded.Len() != seed.Len() {
			t.Fatalf("%s: %d references, want %d", name, loaded.Len(), seed.Len())
		}
		left, err := filepath.Glob(filepath.Join(dir, name+".tmp*"))
		if err != nil || len(left) != 0 {
			t.Fatalf("%s: temp files left behind: %v (%v)", name, left, err)
		}
		// The temp file's restrictive 0600 mode must not survive the
		// rename — checkpoints stay readable by other operator tooling.
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if perm := info.Mode().Perm(); perm != 0o644 {
			t.Fatalf("%s: checkpoint permissions %v, want 0644", name, perm)
		}
		// ...but permissions an operator tightened deliberately persist
		// across rewrites.
		if err := os.Chmod(path, 0o600); err != nil {
			t.Fatal(err)
		}
		if err := SaveDatabaseFile(path, seed); err != nil {
			t.Fatal(err)
		}
		if info, err = os.Stat(path); err != nil {
			t.Fatal(err)
		}
		if perm := info.Mode().Perm(); perm != 0o600 {
			t.Fatalf("%s: rewrite widened tightened permissions to %v", name, perm)
		}
	}
	head, err := os.ReadFile(filepath.Join(dir, "ref.json"))
	if err != nil || head[0] != '{' {
		t.Fatalf(".json checkpoint is not JSON (%v)", err)
	}
	if head, err = os.ReadFile(filepath.Join(dir, "ref.db")); err != nil || head[0] != 'D' {
		t.Fatalf(".db checkpoint is not binary (%v)", err)
	}
	// JSON with leading whitespace (a hand edit, a pretty-printer) must
	// still sniff as JSON, not fail as corrupt binary.
	raw, err := os.ReadFile(filepath.Join(dir, "ref.json"))
	if err != nil {
		t.Fatal(err)
	}
	padded := filepath.Join(dir, "padded.json")
	if err := os.WriteFile(padded, append([]byte("\n  \t"), raw...), 0o644); err != nil {
		t.Fatal(err)
	}
	if loaded, err := LoadDatabaseFile(padded); err != nil || loaded.Len() != seed.Len() {
		t.Fatalf("whitespace-padded JSON rejected: %v", err)
	}
	if _, err := LoadDatabaseFile(filepath.Join(dir, "missing.db")); err == nil {
		t.Fatal("missing file accepted")
	}
	empty := filepath.Join(dir, "empty.db")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDatabaseFile(empty); err == nil {
		t.Fatal("empty file accepted")
	}
}

// TestResolveReferences covers the monitoring commands' shared
// reference resolution: saved database, stream training, cold start,
// and the rejected -ref 0 without -enroll or -db.
func TestResolveReferences(t *testing.T) {
	t.Parallel()
	seedRefs, _, err := TrainFromStream(&sliceSource{recs: trainRecords(t, 120)}, time.Minute, singleParam, dot11fp.MeasureCosine)
	if err != nil {
		t.Fatal(err)
	}
	seed := seedRefs.DB
	path := filepath.Join(t.TempDir(), "ref.db")
	if err := SaveDatabaseFile(path, seed); err != nil {
		t.Fatal(err)
	}

	// -db: the file decides param and measure; bogus flag values are
	// documented as ignored and must not fail.
	cfgs, measure, refs, pending, err := ResolveReferences("test", path, 0, "bogus", "nope", EnrollFlags{}, nil, 1)
	if err != nil {
		t.Fatalf("-db with ignored bogus param/measure: %v", err)
	}
	if refs.Empty() || refs.Len() != seed.Len() || pending != nil {
		t.Fatalf("-db resolution: refs=%+v pending=%v", refs, pending)
	}
	if len(cfgs) != 1 || cfgs[0].Param != dot11fp.ParamSize || measure != dot11fp.MeasureCosine {
		t.Fatalf("-db resolution took shape %v/%v from the flags, not the file", cfgs, measure)
	}
	// ...but without -db the same bogus values are fatal.
	if _, _, _, _, err := ResolveReferences("test", "", time.Minute, "bogus", "cosine", EnrollFlags{}, &sliceSource{}, 1); err == nil {
		t.Fatal("bogus -param accepted on the training path")
	}

	// Stream training returns the boundary record; a comma list trains
	// a fused ensemble.
	_, _, refs, pending, err = ResolveReferences("test", "", time.Minute, "size", "cosine",
		EnrollFlags{}, &sliceSource{recs: trainRecords(t, 120)}, 1)
	if err != nil || refs.Empty() || pending == nil {
		t.Fatalf("training resolution: refs=%+v pending=%v err=%v", refs, pending, err)
	}
	cfgs, _, refs, _, err = ResolveReferences("test", "", time.Minute, "size,rate", "cosine",
		EnrollFlags{}, &sliceSource{recs: trainRecords(t, 120)}, 1)
	if err != nil || !refs.Multi() || len(cfgs) != 2 {
		t.Fatalf("fused training resolution: refs=%+v cfgs=%v err=%v", refs, cfgs, err)
	}

	// Cold start: no database, no error; rejected without -enroll.
	if _, _, refs, _, err = ResolveReferences("test", "", 0, "size", "cosine", EnrollFlags{Enroll: true, Windows: 1}, nil, 1); err != nil || !refs.Empty() {
		t.Fatalf("cold start: refs=%+v err=%v", refs, err)
	}
	if _, _, _, _, err = ResolveReferences("test", "", 0, "size", "cosine", EnrollFlags{}, nil, 1); err == nil {
		t.Fatal("-ref 0 without -enroll or -db accepted")
	}

	// The trainer-vs-compiled split the commands feed engines with.
	singleCfgs := []dot11fp.Config{seed.Config()}
	if tr, cdb, cedb, err := (EnrollFlags{Enroll: true, Windows: 1}).EnrollOrCompile(singleCfgs, seed.Measure(), seedRefs); err != nil || tr == nil || cdb != nil || cedb != nil {
		t.Fatal("enrolling resolution did not yield a trainer")
	}
	if tr, cdb, cedb, err := (EnrollFlags{}).EnrollOrCompile(singleCfgs, seed.Measure(), seedRefs); err != nil || tr != nil || cdb == nil || cedb != nil {
		t.Fatal("static resolution did not yield a compiled database")
	}
	if tr, cdb, cedb, err := (EnrollFlags{}).EnrollOrCompile(singleCfgs, seed.Measure(), References{}); err != nil || tr != nil || cdb != nil || cedb != nil {
		t.Fatal("empty resolution yielded references from nothing")
	}
	fused, _, err := TrainFromStream(&sliceSource{recs: trainRecords(t, 120)}, time.Minute,
		[]dot11fp.Param{dot11fp.ParamSize, dot11fp.ParamRate}, dot11fp.MeasureCosine)
	if err != nil {
		t.Fatal(err)
	}
	if tr, cdb, cedb, err := (EnrollFlags{}).EnrollOrCompile(fused.Configs(), fused.Measure(), fused); err != nil || tr != nil || cdb != nil || cedb == nil {
		t.Fatal("fused static resolution did not yield a compiled ensemble")
	}
	if tr, _, _, err := (EnrollFlags{Enroll: true, Windows: 1}).EnrollOrCompile(fused.Configs(), fused.Measure(), fused); err != nil || tr == nil || tr.Ensemble() == nil {
		t.Fatal("fused enrolling resolution did not yield an ensemble trainer")
	}
}

// TestEnsembleReferencesFileRoundTrip covers the fused checkpoint path
// end to end: SaveReferencesFile writes the binary container, codec
// sniffing restores it, and the .json extension is rejected up front.
func TestEnsembleReferencesFileRoundTrip(t *testing.T) {
	t.Parallel()
	fused, _, err := TrainFromStream(&sliceSource{recs: trainRecords(t, 120)}, time.Minute,
		[]dot11fp.Param{dot11fp.ParamSize, dot11fp.ParamRate}, dot11fp.MeasureCosine)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "fused.fpdb")
	if err := SaveReferencesFile(path, fused); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadReferencesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Multi() || loaded.Len() != fused.Len() {
		t.Fatalf("loaded refs: multi=%v len=%d, want multi len=%d", loaded.Multi(), loaded.Len(), fused.Len())
	}
	if got := loaded.Configs(); got[0].Param != dot11fp.ParamSize || got[1].Param != dot11fp.ParamRate {
		t.Fatalf("loaded configs = %v", got)
	}
	// The single-database loader refuses an ensemble container rather
	// than misparsing it.
	if _, err := LoadDatabaseFile(path); err == nil {
		t.Fatal("LoadDatabaseFile accepted an ensemble container")
	}
	// No JSON interop form for ensembles: fail fast, write nothing.
	jsonPath := filepath.Join(dir, "fused.json")
	if err := SaveReferencesFile(jsonPath, fused); err == nil {
		t.Fatal(".json ensemble checkpoint accepted")
	}
	if _, err := os.Stat(jsonPath); !os.IsNotExist(err) {
		t.Fatalf("rejected checkpoint left a file behind (%v)", err)
	}
}

// TestPrinterShape pins the one-line-per-event output contract the
// operators' tooling greps.
func TestPrinterShape(t *testing.T) {
	t.Parallel()
	addr, _ := dot11fp.ParseAddr("02:00:00:00:00:01")
	best, _ := dot11fp.ParseAddr("02:00:00:00:00:02")
	sig := dot11fp.ExtractOne(&dot11fp.Trace{Records: []dot11fp.Record{
		{T: 1, Sender: addr, Size: 200, RateMbps: 24, FCSOK: true},
	}}, addr, dot11fp.DefaultConfig(dot11fp.ParamSize))
	stamp := func(us int64) string { return time.Duration(us * 1000).String() }

	events := []struct {
		ev      dot11fp.Event
		want    []string
		verbose bool // emitted only under -v
	}{
		{dot11fp.CandidateMatched{Window: 1, Addr: addr, Sig: sig, Best: dot11fp.Score{Addr: best, Sim: 0.5}},
			[]string{"w001", "matched", "02:00:00:00:00:02", "sim=0.5000"}, false},
		{dot11fp.UnknownDevice{Window: 2, Addr: addr, Sig: sig},
			[]string{"w002", "UNKNOWN", "no references"}, false},
		{dot11fp.UnknownDevice{Window: 2, Addr: addr, Sig: sig, Best: dot11fp.Score{Addr: best, Sim: 0.25}, HasBest: true},
			[]string{"UNKNOWN", "best 02:00:00:00:00:02", "sim=0.2500"}, false},
		{dot11fp.CandidateDropped{Window: 3, Addr: addr, Observations: 7, Minimum: 50},
			[]string{"dropped", "7/50"}, true},
		{dot11fp.CandidateDropped{Window: 3, Addr: addr, Observations: 7, Evicted: true},
			[]string{"evicted"}, true},
		{dot11fp.EnrollmentProgress{Window: 4, Addr: addr, Windows: 1, Horizon: 3, Observations: 80},
			[]string{"enrolling", "1/3"}, true},
		{dot11fp.DeviceEnrolled{Window: 5, Addr: addr, Windows: 3, Observations: 240, Refs: 9},
			[]string{"ENROLLED", "3 windows", "9 references"}, false},
		{dot11fp.DBSwapped{Window: 5, Version: 2, Refs: 9, Enrolled: 1},
			[]string{"references v2", "9 devices", "1 enrolled"}, false},
		{dot11fp.WindowClosed{Window: 5, Start: 0, End: 1000, Frames: 10, Senders: 2, Candidates: 1, Matched: 1},
			[]string{"window 5", "10 frames", "2 senders"}, false},
	}
	for _, tc := range events {
		for _, verbose := range []bool{false, true} {
			var buf bytes.Buffer
			Printer(&buf, stamp, verbose)(tc.ev)
			out := buf.String()
			if tc.verbose && !verbose {
				if out != "" {
					t.Errorf("%T printed %q without -v", tc.ev, out)
				}
				continue
			}
			if n := strings.Count(out, "\n"); n != 1 {
				t.Errorf("%T printed %d lines: %q", tc.ev, n, out)
				continue
			}
			for _, want := range tc.want {
				if !strings.Contains(out, want) {
					t.Errorf("%T line %q is missing %q", tc.ev, out, want)
				}
			}
		}
	}
}

// TestStatsLines pins the operator stats formats.
func TestStatsLines(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	StatsLine(&buf, "livemon", dot11fp.EngineStats{
		Frames: 1000, Elapsed: time.Second, FramesPerSec: 1000,
		WindowsClosed: 2, Matched: 3, Unknown: 1, Candidates: 4,
	})
	for _, want := range []string{"livemon:", "1000 frames", "2 windows", "4 candidates", "3 matched"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("stats line %q is missing %q", buf.String(), want)
		}
	}
	buf.Reset()
	TrainerLine(&buf, "fingerprintd", dot11fp.TrainerStats{
		Refs: 12, Enrolled: 12, Swaps: 4, Pending: 3, Rejected: 2, Denied: 40,
	})
	// Rejected (senders) and Denied (per-window observations) are
	// different units and must not be summed into one figure.
	for _, want := range []string{"fingerprintd:", "12 references", "4 swaps", "3 pending", "2 rejected", "40 denied observations"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("trainer line %q is missing %q", buf.String(), want)
		}
	}
}

func TestClusterSource(t *testing.T) {
	t.Parallel()
	// Two rotated MACs carrying the same probe content, plus the data
	// frames they send afterwards: the wrapped stream must hand every
	// one of them to training under the single canonical identity.
	body := dot11.BuildProbeBody(nil, nil, []byte{0xdd, 0x05, 0x00, 0x50, 0xf2, 0x04, 0x99})
	mac1 := dot11.Addr{0x06, 1, 2, 3, 4, 5}
	mac2 := dot11.Addr{0x06, 9, 8, 7, 6, 5}
	probe := func(t0 int64, sa dot11.Addr) dot11fp.Record {
		return dot11fp.Record{
			T: t0, Sender: sa, Receiver: dot11.Broadcast,
			Class: dot11.ClassProbeReq, ProbeIEs: body, Size: 60, FCSOK: true,
		}
	}
	data := func(t0 int64, sa dot11.Addr) dot11fp.Record {
		return dot11fp.Record{
			T: t0, Sender: sa, Receiver: dot11.LocalAddr(99),
			Class: dot11.ClassData, Size: 200, FCSOK: true,
		}
	}
	recs := []dot11fp.Record{
		probe(0, mac1), data(1_000, mac1),
		probe(2_000_000, mac2), data(2_001_000, mac2),
	}

	cl := dot11fp.NewClusterer(0)
	src := NewClusterSource(&sliceSource{recs: recs}, cl)
	var senders []dot11.Addr
	for {
		rec, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		senders = append(senders, rec.Sender)
	}
	if len(senders) != len(recs) {
		t.Fatalf("got %d records, want %d", len(senders), len(recs))
	}
	for i, sa := range senders {
		if sa != senders[0] {
			t.Fatalf("record %d sender %v, want canonical %v for all records", i, sa, senders[0])
		}
	}
	if senders[0] == mac1 || senders[0] == mac2 {
		t.Fatalf("canonical sender %v should differ from the rotated MACs", senders[0])
	}

	// A nil Clusterer is a passthrough: the source comes back unwrapped.
	plain := &sliceSource{recs: recs}
	if got := NewClusterSource(plain, nil); got != dot11fp.RecordSource(plain) {
		t.Fatal("nil Clusterer should return the source unchanged")
	}
}
