// Package cmdutil holds the helpers the monitoring commands — livemon
// and fingerprintd — share, so training, flag validation, database I/O
// and stats reporting cannot drift between the two binaries.
package cmdutil

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dot11fp"
)

// TrainFromStream materialises only the training prefix of a record
// stream (records with T within refDur of the first record), builds
// the reference database, and hands back the boundary record so
// monitoring starts exactly where training stopped — Split's
// anchoring, streamed. Works over any record source: a single pcap
// stream or a multi-source merge.
func TrainFromStream(stream dot11fp.RecordSource, refDur time.Duration, param dot11fp.Param, measure dot11fp.Measure) (*dot11fp.Database, *dot11fp.Record, error) {
	train := &dot11fp.Trace{}
	var cut int64
	for {
		rec, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		if len(train.Records) == 0 {
			cut = rec.T + refDur.Microseconds()
		}
		if rec.T >= cut {
			db := dot11fp.NewDatabase(dot11fp.DefaultConfig(param), measure)
			if err := db.Train(train); err != nil {
				return nil, nil, err
			}
			return db, &rec, nil
		}
		train.Records = append(train.Records, rec)
	}
	return nil, nil, fmt.Errorf("stream ended inside the %v training prefix (%d records)", refDur, len(train.Records))
}

// ParseMergeMode maps the -merge flag to a merge mode.
func ParseMergeMode(s string) (dot11fp.MergeMode, error) {
	switch s {
	case "time":
		return dot11fp.MergeByTime, nil
	case "arrival":
		return dot11fp.MergeArrival, nil
	default:
		return 0, fmt.Errorf("unknown -merge mode %q (want time or arrival)", s)
	}
}

// EnrollFlags is the shared -enroll flag cluster of the monitoring
// commands.
type EnrollFlags struct {
	// Enroll enables online enrollment (-enroll).
	Enroll bool
	// Windows is the enrollment horizon in detection windows
	// (-enroll-windows).
	Windows int
}

// Validate rejects inconsistent flag combinations before any work
// starts.
func (f EnrollFlags) Validate() error {
	if f.Windows < 1 {
		return fmt.Errorf("-enroll-windows must be at least 1 (got %d)", f.Windows)
	}
	if !f.Enroll && f.Windows != 1 {
		return fmt.Errorf("-enroll-windows requires -enroll")
	}
	return nil
}

// NewTrainer builds the trainer the flags describe: auto-enrollment
// over the given horizon, references frozen once enrolled. seed may be
// nil for a cold start.
func (f EnrollFlags) NewTrainer(cfg dot11fp.Config, measure dot11fp.Measure, seed *dot11fp.Database) *dot11fp.Trainer {
	opts := dot11fp.TrainerOptions{Horizon: f.Windows}
	if seed != nil {
		return dot11fp.NewTrainerFrom(seed, opts)
	}
	return dot11fp.NewTrainer(cfg, measure, opts)
}

// EnrollOrCompile turns resolved references into the engine's inputs:
// when enrolling, a live trainer that owns the references (warm-started
// from db when one was resolved); otherwise the compiled database, nil
// on a cold start. Exactly one of the two is non-nil unless neither
// enrollment nor references were configured.
func (f EnrollFlags) EnrollOrCompile(cfg dot11fp.Config, measure dot11fp.Measure, db *dot11fp.Database) (*dot11fp.Trainer, *dot11fp.CompiledDB) {
	if f.Enroll {
		return f.NewTrainer(cfg, measure, db), nil
	}
	if db != nil {
		return nil, db.Compile()
	}
	return nil, nil
}

// ResolveReferences is the monitoring commands' shared reference
// resolution: load a saved database (dbPath, either codec — the param
// and measure names are ignored, both come from the file), train on the
// stream's first ref duration, or accept a cold start when enrollment
// will populate the references. pending is the first record past a
// training prefix, nil otherwise. Progress is reported on stderr under
// prefix; sources > 1 notes the multi-source merge.
func ResolveReferences(prefix, dbPath string, ref time.Duration, paramName, measureName string, enroll EnrollFlags, stream dot11fp.RecordSource, sources int) (cfg dot11fp.Config, measure dot11fp.Measure, db *dot11fp.Database, pending *dot11fp.Record, err error) {
	if dbPath != "" {
		if db, err = LoadDatabaseFile(dbPath); err != nil {
			return
		}
		cfg, measure = db.Config(), db.Measure()
		fmt.Fprintf(os.Stderr, "%s: loaded %d references (%s, %s)\n", prefix, db.Len(), cfg.Param, measure)
		return
	}
	// The param/measure flags only shape training and cold starts, so
	// they are only parsed — and can only fail — on this path.
	param, err := dot11fp.ParamByShortName(paramName)
	if err != nil {
		return
	}
	if measure, err = dot11fp.MeasureByName(measureName); err != nil {
		return
	}
	cfg = dot11fp.DefaultConfig(param)
	switch {
	case ref <= 0 && enroll.Enroll:
		after := ""
		if enroll.Windows > 1 {
			after = fmt.Sprintf(" after %d windows", enroll.Windows)
		}
		fmt.Fprintf(os.Stderr, "%s: cold start (%s, %s), enrolling%s\n", prefix, param, measure, after)
	case ref <= 0:
		err = fmt.Errorf("-ref 0 needs -enroll (nothing would ever match) or -db")
	default:
		if db, pending, err = TrainFromStream(stream, ref, param, measure); err != nil {
			return
		}
		cfg = db.Config()
		from := fmt.Sprintf("the first %v", ref)
		if sources > 1 {
			from += fmt.Sprintf(" of %d sources", sources)
		}
		fmt.Fprintf(os.Stderr, "%s: trained %d references from %s (%s)\n", prefix, db.Len(), from, cfg.Param)
	}
	return
}

// LoadDatabaseFile reads a reference database from disk in either
// codec, sniffing the first non-whitespace byte: JSON documents open
// with '{' (possibly after indentation a hand edit left behind),
// binary checkpoints with their magic.
func LoadDatabaseFile(path string) (*dot11fp.Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for {
		head, err := br.Peek(1)
		switch {
		case err == io.EOF:
			return nil, fmt.Errorf("%s: empty database file", path)
		case err != nil:
			return nil, fmt.Errorf("%s: %w", path, err)
		case head[0] == ' ' || head[0] == '\t' || head[0] == '\n' || head[0] == '\r':
			br.Discard(1) // the binary magic never starts with whitespace
			continue
		}
		var db *dot11fp.Database
		if head[0] == '{' {
			db, err = dot11fp.LoadDatabase(br)
		} else {
			db, err = dot11fp.LoadBinaryDatabase(br)
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return db, nil
	}
}

// SaveDatabaseFile checkpoints a database to disk atomically: the
// bytes land in a temporary file in the target directory which is then
// renamed over path, so a reader (or a crash) never observes a torn
// checkpoint — hot-swap persistence. The codec follows the extension:
// .json writes the interop JSON document, everything else the fast
// binary format.
func SaveDatabaseFile(path string, db *dot11fp.Database) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	// CreateTemp's 0600 mode would survive the rename and lock other
	// operators out of a previously readable checkpoint. An existing
	// checkpoint keeps its permissions — an operator may have tightened
	// them deliberately — and a fresh one gets ordinary database-file
	// permissions.
	mode := os.FileMode(0o644)
	if info, statErr := os.Stat(path); statErr == nil {
		mode = info.Mode().Perm()
	}
	if err := tmp.Chmod(mode); err != nil {
		tmp.Close()
		return err
	}
	if strings.EqualFold(filepath.Ext(path), ".json") {
		err = db.Save(tmp)
	} else {
		err = db.SaveBinary(tmp)
	}
	if err == nil {
		// Flush the data to stable storage before committing the name: a
		// rename alone orders nothing, and a crash right after it could
		// surface the new name over empty blocks — the torn checkpoint
		// this function promises never to leave.
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Persist the rename itself: fsync the directory entry.
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// CheckSavePath fails fast when a checkpoint path is not writable — a
// daemon that discovers a typo'd -save directory only at its first
// SIGHUP (or at shutdown) has already lost everything it learned. The
// probe creates and removes a temp file beside the target, the same
// write SaveDatabaseFile will later perform.
func CheckSavePath(path string) error {
	if info, err := os.Stat(path); err == nil && info.IsDir() {
		return fmt.Errorf("checkpoint path %s is a directory", path)
	}
	probe, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".probe*")
	if err != nil {
		return fmt.Errorf("checkpoint path is not writable: %w", err)
	}
	probe.Close()
	return os.Remove(probe.Name())
}

// Printer renders engine events as one line each on w — the monitoring
// commands' shared output format. stamp renders a window bound
// (trace-time µs) the way the command's clock works: wall time for a
// single capture, stream offset for a multi-source merge. verbose also
// prints below-minimum and evicted drops and enrollment progress.
func Printer(w io.Writer, stamp func(us int64) string, verbose bool) func(dot11fp.Event) {
	return func(ev dot11fp.Event) {
		switch ev := ev.(type) {
		case dot11fp.CandidateMatched:
			fmt.Fprintf(w, "w%03d  %s  matched  %s  sim=%.4f  obs=%d\n",
				ev.Window, ev.Addr, ev.Best.Addr, ev.Best.Sim, ev.Sig.Observations())
		case dot11fp.UnknownDevice:
			if ev.HasBest {
				fmt.Fprintf(w, "w%03d  %s  UNKNOWN  (best %s sim=%.4f)  obs=%d\n",
					ev.Window, ev.Addr, ev.Best.Addr, ev.Best.Sim, ev.Sig.Observations())
			} else {
				fmt.Fprintf(w, "w%03d  %s  UNKNOWN  (no references)  obs=%d\n",
					ev.Window, ev.Addr, ev.Sig.Observations())
			}
		case dot11fp.CandidateDropped:
			if verbose {
				if ev.Evicted {
					fmt.Fprintf(w, "w%03d  %s  evicted  %d observations\n",
						ev.Window, ev.Addr, ev.Observations)
				} else {
					fmt.Fprintf(w, "w%03d  %s  dropped  %d/%d observations\n",
						ev.Window, ev.Addr, ev.Observations, ev.Minimum)
				}
			}
		case dot11fp.EnrollmentProgress:
			if verbose {
				fmt.Fprintf(w, "w%03d  %s  enrolling  %d/%d windows, %d observations\n",
					ev.Window, ev.Addr, ev.Windows, ev.Horizon, ev.Observations)
			}
		case dot11fp.DeviceEnrolled:
			fmt.Fprintf(w, "w%03d  %s  ENROLLED  after %d windows, %d observations (%d references)\n",
				ev.Window, ev.Addr, ev.Windows, ev.Observations, ev.Refs)
		case dot11fp.DBSwapped:
			fmt.Fprintf(w, "-- references v%d installed: %d devices (%d enrolled, %d updated)\n",
				ev.Version, ev.Refs, ev.Enrolled, ev.Updated)
		case dot11fp.WindowClosed:
			fmt.Fprintf(w, "-- window %d [%s, %s): %d frames, %d senders, %d candidates (%d matched, %d unknown), %d dropped\n",
				ev.Window, stamp(ev.Start), stamp(ev.End), ev.Frames,
				ev.Senders, ev.Candidates, ev.Matched, ev.Unknown, ev.Dropped)
		}
	}
}

// StatsLine prints one operator-readable counters snapshot, prefixed
// with the command name.
func StatsLine(w io.Writer, prefix string, st dot11fp.EngineStats) {
	fmt.Fprintf(w,
		"%s: %d frames in %v (%.0f frames/s), %d live senders, %d windows, %d candidates (%d matched, %d unknown), %d dropped senders (%d evicted), %d dropped frames\n",
		prefix, st.Frames, st.Elapsed.Round(time.Millisecond), st.FramesPerSec, st.LiveSenders,
		st.WindowsClosed, st.Candidates, st.Matched, st.Unknown,
		st.Dropped, st.Evicted, st.DroppedFrames)
}

// TrainerLine prints one operator-readable enrollment snapshot. Denied
// counts skipped candidate observations (one per window a deny-listed
// sender stays active) and Rejected counts confirm-refused senders —
// different units, so they are reported separately.
func TrainerLine(w io.Writer, prefix string, st dot11fp.TrainerStats) {
	fmt.Fprintf(w,
		"%s: enrollment: %d references (%d enrolled live, %d updates, %d swaps), %d pending, %d rejected, %d denied observations\n",
		prefix, st.Refs, st.Enrolled, st.Updated, st.Swaps, st.Pending, st.Rejected, st.Denied)
}
