// Package cmdutil holds the helpers the monitoring commands — livemon
// and fingerprintd — share, so training, flag validation, database I/O
// and stats reporting cannot drift between the two binaries.
package cmdutil

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dot11fp"
	"dot11fp/internal/checkpoint"
)

// ParseParams maps the -param flag — one short name or a comma list
// ("iat", "rate,size,iat") — to the parameter set. More than one
// parameter selects multi-parameter fusion; duplicates are rejected.
func ParseParams(s string) ([]dot11fp.Param, error) {
	parts := strings.Split(s, ",")
	params := make([]dot11fp.Param, 0, len(parts))
	seen := make(map[dot11fp.Param]bool, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("empty entry in -param %q", s)
		}
		p, err := dot11fp.ParamByShortName(part)
		if err != nil {
			return nil, err
		}
		if seen[p] {
			return nil, fmt.Errorf("duplicate parameter %q in -param %q", part, s)
		}
		seen[p] = true
		params = append(params, p)
	}
	return params, nil
}

// References is a resolved reference set: a single-parameter database
// or a multi-parameter ensemble — the monitoring commands treat both
// through this one handle. The zero value is the cold start (no
// references yet).
type References struct {
	DB  *dot11fp.Database
	Ens *dot11fp.Ensemble
}

// Empty reports a cold start.
func (r References) Empty() bool { return r.DB == nil && r.Ens == nil }

// Multi reports a multi-parameter (ensemble) reference set.
func (r References) Multi() bool { return r.Ens != nil }

// Len returns the number of reference devices (fully-known ones, for
// an ensemble).
func (r References) Len() int {
	switch {
	case r.DB != nil:
		return r.DB.Len()
	case r.Ens != nil:
		return r.Ens.Len()
	}
	return 0
}

// Configs returns the extraction configurations (one per member).
func (r References) Configs() []dot11fp.Config {
	switch {
	case r.DB != nil:
		return []dot11fp.Config{r.DB.Config()}
	case r.Ens != nil:
		return r.Ens.Configs()
	}
	return nil
}

// SetIndexing applies the -index mode to the reference set — database
// or every ensemble member alike; no-op on a cold start. Call it
// before compiling (EnrollOrCompile): the mode is a property of the
// mutable references, and compiled snapshots freeze it in.
func (r References) SetIndexing(mode dot11fp.IndexMode) {
	switch {
	case r.DB != nil:
		r.DB.SetIndexing(mode)
	case r.Ens != nil:
		r.Ens.SetIndexing(mode)
	}
}

// Measure returns the similarity measure.
func (r References) Measure() dot11fp.Measure {
	switch {
	case r.DB != nil:
		return r.DB.Measure()
	case r.Ens != nil:
		return r.Ens.Measure()
	}
	return 0
}

// defaultConfigs materialises the default extraction configuration per
// parameter.
func defaultConfigs(params []dot11fp.Param) []dot11fp.Config {
	cfgs := make([]dot11fp.Config, len(params))
	for i, p := range params {
		cfgs[i] = dot11fp.DefaultConfig(p)
	}
	return cfgs
}

// TrainFromStream materialises only the training prefix of a record
// stream (records with T within refDur of the first record), builds
// the reference set — a database for one parameter, an ensemble for
// several — and hands back the boundary record so monitoring starts
// exactly where training stopped — Split's anchoring, streamed. Works
// over any record source: a single pcap stream or a multi-source merge.
func TrainFromStream(stream dot11fp.RecordSource, refDur time.Duration, params []dot11fp.Param, measure dot11fp.Measure) (References, *dot11fp.Record, error) {
	train := &dot11fp.Trace{}
	var cut int64
	for {
		rec, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return References{}, nil, err
		}
		if len(train.Records) == 0 {
			cut = rec.T + refDur.Microseconds()
		}
		if rec.T >= cut {
			refs, err := trainRefs(train, params, measure)
			if err != nil {
				return References{}, nil, err
			}
			return refs, &rec, nil
		}
		train.Records = append(train.Records, rec)
	}
	return References{}, nil, fmt.Errorf("stream ended inside the %v training prefix (%d records)", refDur, len(train.Records))
}

// trainRefs builds the reference set for the parameter list from a
// materialised training trace.
func trainRefs(train *dot11fp.Trace, params []dot11fp.Param, measure dot11fp.Measure) (References, error) {
	if len(params) == 1 {
		db := dot11fp.NewDatabase(dot11fp.DefaultConfig(params[0]), measure)
		if err := db.Train(train); err != nil {
			return References{}, err
		}
		return References{DB: db}, nil
	}
	ens, err := dot11fp.NewEnsemble(measure, defaultConfigs(params)...)
	if err != nil {
		return References{}, err
	}
	if err := ens.Train(train); err != nil {
		return References{}, err
	}
	return References{Ens: ens}, nil
}

// ClusterSource wraps a record stream with the clustering stage:
// every record's sender is resolved through cl before the consumer
// sees it, so a training prefix read through the wrapper learns
// canonical cluster addresses — the same addresses the engine's own
// Cluster option resolves at monitoring time (canonical addresses are
// a pure function of probe content, and re-resolving one is a no-op,
// so sharing cl between the wrapper and the engine is safe and keeps
// the binding table warm across the train/monitor boundary).
type ClusterSource struct {
	src dot11fp.RecordSource
	cl  *dot11fp.Clusterer
}

// NewClusterSource wraps src so every record is sender-resolved
// through cl. A nil cl returns src unchanged.
func NewClusterSource(src dot11fp.RecordSource, cl *dot11fp.Clusterer) dot11fp.RecordSource {
	if cl == nil {
		return src
	}
	return &ClusterSource{src: src, cl: cl}
}

// Next reads the next record and rewrites its sender to the canonical
// cluster address.
func (s *ClusterSource) Next() (dot11fp.Record, error) {
	rec, err := s.src.Next()
	if err != nil {
		return rec, err
	}
	rec.Sender = s.cl.Resolve(&rec)
	return rec, nil
}

// ParseMergeMode maps the -merge flag to a merge mode.
func ParseMergeMode(s string) (dot11fp.MergeMode, error) {
	switch s {
	case "time":
		return dot11fp.MergeByTime, nil
	case "arrival":
		return dot11fp.MergeArrival, nil
	default:
		return 0, fmt.Errorf("unknown -merge mode %q (want time or arrival)", s)
	}
}

// EnrollFlags is the shared -enroll flag cluster of the monitoring
// commands.
type EnrollFlags struct {
	// Enroll enables online enrollment (-enroll).
	Enroll bool
	// Windows is the enrollment horizon in detection windows
	// (-enroll-windows).
	Windows int
	// Decide, when non-nil, switches the trainer to confirm mode with
	// this three-way callback (approve/reject/defer) deciding each
	// completed sender — the HTTP server's enrollment gate plugs in
	// here (fingerprintd -enroll-confirm).
	Decide func(dot11fp.PendingEnrollment) dot11fp.EnrollDecision
}

// Validate rejects inconsistent flag combinations before any work
// starts.
func (f EnrollFlags) Validate() error {
	if f.Windows < 1 {
		return fmt.Errorf("-enroll-windows must be at least 1 (got %d)", f.Windows)
	}
	if !f.Enroll && f.Windows != 1 {
		return fmt.Errorf("-enroll-windows requires -enroll")
	}
	return nil
}

// NewTrainer builds the trainer the flags describe: auto-enrollment
// over the given horizon (confirm mode when Decide is set), references
// frozen once enrolled. seed may be
// empty for a cold start; a multi-parameter seed (or cfgs list) yields
// an ensemble trainer.
func (f EnrollFlags) NewTrainer(cfgs []dot11fp.Config, measure dot11fp.Measure, seed References) (*dot11fp.Trainer, error) {
	opts := dot11fp.TrainerOptions{Horizon: f.Windows}
	if f.Decide != nil {
		opts.Policy, opts.Decide = dot11fp.EnrollConfirm, f.Decide
	}
	switch {
	case seed.DB != nil:
		return dot11fp.NewTrainerFrom(seed.DB, opts), nil
	case seed.Ens != nil:
		return dot11fp.NewEnsembleTrainerFrom(seed.Ens, opts)
	case len(cfgs) > 1:
		return dot11fp.NewEnsembleTrainer(cfgs, measure, opts)
	}
	return dot11fp.NewTrainer(cfgs[0], measure, opts), nil
}

// EnrollOrCompile turns resolved references into the engine's inputs:
// when enrolling, a live trainer that owns the references (warm-started
// from refs when they were resolved); otherwise the compiled database
// or ensemble, nil on a cold start. At most one of the three results is
// non-nil.
func (f EnrollFlags) EnrollOrCompile(cfgs []dot11fp.Config, measure dot11fp.Measure, refs References) (trainer *dot11fp.Trainer, cdb *dot11fp.CompiledDB, cedb *dot11fp.CompiledEnsemble, err error) {
	if f.Enroll {
		trainer, err = f.NewTrainer(cfgs, measure, refs)
		return
	}
	switch {
	case refs.DB != nil:
		cdb = refs.DB.Compile()
	case refs.Ens != nil:
		cedb = refs.Ens.Compile()
	}
	return
}

// ResolveReferences is the monitoring commands' shared reference
// resolution: load a saved reference set (dbPath, any codec — the
// param and measure names are ignored, both come from the file), train
// on the stream's first ref duration, or accept a cold start when
// enrollment will populate the references. paramList takes the -param
// comma syntax; more than one parameter resolves a multi-parameter
// ensemble. pending is the first record past a training prefix, nil
// otherwise. Progress is reported on stderr under prefix; sources > 1
// notes the multi-source merge.
func ResolveReferences(prefix, dbPath string, ref time.Duration, paramList, measureName string, enroll EnrollFlags, stream dot11fp.RecordSource, sources int) (cfgs []dot11fp.Config, measure dot11fp.Measure, refs References, pending *dot11fp.Record, err error) {
	if dbPath != "" {
		if refs, err = LoadReferencesFile(dbPath); err != nil {
			return
		}
		cfgs, measure = refs.Configs(), refs.Measure()
		fmt.Fprintf(os.Stderr, "%s: loaded %d references (%s, %s)\n", prefix, refs.Len(), paramsLabel(cfgs), measure)
		return
	}
	// The param/measure flags only shape training and cold starts, so
	// they are only parsed — and can only fail — on this path.
	params, err := ParseParams(paramList)
	if err != nil {
		return
	}
	if measure, err = dot11fp.MeasureByName(measureName); err != nil {
		return
	}
	cfgs = defaultConfigs(params)
	switch {
	case ref <= 0 && enroll.Enroll:
		after := ""
		if enroll.Windows > 1 {
			after = fmt.Sprintf(" after %d windows", enroll.Windows)
		}
		fmt.Fprintf(os.Stderr, "%s: cold start (%s, %s), enrolling%s\n", prefix, paramsLabel(cfgs), measure, after)
	case ref <= 0:
		err = fmt.Errorf("-ref 0 needs -enroll (nothing would ever match) or -db")
	default:
		if refs, pending, err = TrainFromStream(stream, ref, params, measure); err != nil {
			return
		}
		cfgs = refs.Configs()
		from := fmt.Sprintf("the first %v", ref)
		if sources > 1 {
			from += fmt.Sprintf(" of %d sources", sources)
		}
		fmt.Fprintf(os.Stderr, "%s: trained %d references from %s (%s)\n", prefix, refs.Len(), from, paramsLabel(cfgs))
		if refs.Ens != nil {
			if partial := refs.Ens.Partial(); len(partial) > 0 {
				// The operator hears about enrolled-yet-unmatchable
				// devices instead of wondering why they never match.
				fmt.Fprintf(os.Stderr, "%s: %d devices cleared only some parameters and will never match: %v\n",
					prefix, len(partial), partial)
			}
		}
	}
	return
}

// paramsLabel renders the parameter set for progress lines.
func paramsLabel(cfgs []dot11fp.Config) string {
	if len(cfgs) == 1 {
		return cfgs[0].Param.String()
	}
	names := make([]string, len(cfgs))
	for i, cfg := range cfgs {
		names[i] = cfg.Param.ShortName()
	}
	return "fused " + strings.Join(names, "+")
}

// LoadDatabaseFile reads a single-parameter reference database from
// disk in either codec; an ensemble checkpoint is rejected (use
// LoadReferencesFile when fusion may be in play).
func LoadDatabaseFile(path string) (*dot11fp.Database, error) {
	refs, err := LoadReferencesFile(path)
	if err != nil {
		return nil, err
	}
	if refs.Ens != nil {
		return nil, fmt.Errorf("%s: multi-parameter ensemble checkpoint where a single database was expected", path)
	}
	return refs.DB, nil
}

// LoadReferencesFile reads a reference set from disk in any codec,
// sniffing the leading bytes: JSON documents open with '{' (possibly
// after indentation a hand edit left behind), binary database
// checkpoints with "D11FPDB", ensemble containers with "D11FPENS".
//
// The path names a checkpoint generation chain (see
// internal/checkpoint): when the current file is missing or corrupt,
// the previous good generation at path.1 loads instead, with a warning
// on stderr — a crash mid-save or a torn disk never costs the daemon
// its references. Use LoadReferencesChain to observe which generation
// loaded.
func LoadReferencesFile(path string) (References, error) {
	refs, gen, err := LoadReferencesChain(path, checkpoint.Options{})
	if err != nil {
		return References{}, err
	}
	if gen > 0 {
		fmt.Fprintf(os.Stderr, "checkpoint: %s unreadable; recovered generation %d (%s)\n",
			path, gen, checkpoint.GenPath(path, gen))
	}
	return refs, nil
}

// LoadReferencesChain is LoadReferencesFile with explicit checkpoint
// options and the loaded generation (0 = the current file) reported —
// the daemons' recovery-aware load.
func LoadReferencesChain(path string, opts checkpoint.Options) (References, int, error) {
	var refs References
	gen, err := checkpoint.Load(path, opts, func(r io.Reader) error {
		var lerr error
		refs, lerr = loadReferencesReader(r)
		return lerr
	})
	if err != nil {
		return References{}, 0, err
	}
	return refs, gen, nil
}

// loadReferencesReader decodes one reference-set stream, sniffing the
// codec from its leading bytes.
func loadReferencesReader(r io.Reader) (References, error) {
	br := bufio.NewReader(r)
	for {
		head, err := br.Peek(1)
		switch {
		case err == io.EOF:
			return References{}, fmt.Errorf("empty database file")
		case err != nil:
			return References{}, err
		case head[0] == ' ' || head[0] == '\t' || head[0] == '\n' || head[0] == '\r':
			br.Discard(1) // neither binary magic starts with whitespace
			continue
		}
		var refs References
		switch {
		case head[0] == '{':
			refs.DB, err = dot11fp.LoadDatabase(br)
		default:
			// Both binary magics share the "D11FP" prefix; the extra
			// bytes decide. A short file fails the Peek and falls through
			// to the single-database loader's typed corruption error.
			magic, _ := br.Peek(8)
			if string(magic) == "D11FPENS" {
				refs.Ens, err = dot11fp.LoadBinaryEnsemble(br)
			} else {
				refs.DB, err = dot11fp.LoadBinaryDatabase(br)
			}
		}
		if err != nil {
			return References{}, err
		}
		return refs, nil
	}
}

// VerifyReferencesHeader checks that a stream opens like a loadable
// reference checkpoint: a JSON document or one of the binary magics.
// It is the checkpoint save path's verify step — cheap enough to run
// on every save, strong enough to catch the failure it exists for (a
// truncated or zero-filled file surfacing after a crash).
func VerifyReferencesHeader(r io.Reader) error {
	br := bufio.NewReader(r)
	for {
		head, err := br.Peek(1)
		switch {
		case err != nil:
			return fmt.Errorf("reference checkpoint header unreadable: %v", err)
		case head[0] == ' ' || head[0] == '\t' || head[0] == '\n' || head[0] == '\r':
			br.Discard(1)
			continue
		case head[0] == '{':
			return nil
		}
		magic, err := br.Peek(8)
		if err != nil {
			return fmt.Errorf("reference checkpoint header unreadable: %v", err)
		}
		if string(magic) == "D11FPENS" || string(magic[:7]) == "D11FPDB" {
			return nil
		}
		return fmt.Errorf("reference checkpoint header %q matches no codec", magic)
	}
}

// SaveDatabaseFile checkpoints a database to disk atomically: the
// bytes land in a temporary file in the target directory which is then
// fsynced, header-verified by re-reading, and renamed over path, so a
// reader (or a crash) never observes a torn checkpoint — hot-swap
// persistence. The codec follows the extension: .json writes the
// interop JSON document, everything else the fast binary format.
func SaveDatabaseFile(path string, db *dot11fp.Database) error {
	return SaveReferencesCheckpoint(path, References{DB: db}, checkpoint.Options{})
}

// SaveReferencesFile is SaveDatabaseFile for a resolved reference set:
// a single database checkpoints in either codec by extension; an
// ensemble always writes the versioned binary container (there is no
// JSON interop form for fused references — a .json path is rejected up
// front rather than silently writing binary bytes under a lying name).
func SaveReferencesFile(path string, refs References) error {
	return SaveReferencesCheckpoint(path, refs, checkpoint.Options{})
}

// SaveReferencesCheckpoint is SaveReferencesFile with explicit
// checkpoint options — the daemons use it to keep a generation chain
// (Options.Generations) and to retry transient write failures with
// backoff (Options.Retries) instead of losing a SIGHUP save to one
// full disk. The written file is verified by re-reading its header
// before the previous generation is disturbed.
func SaveReferencesCheckpoint(path string, refs References, opts checkpoint.Options) error {
	var write func(w io.Writer) error
	switch {
	case refs.Ens != nil:
		if err := CheckEnsembleSave(path); err != nil {
			return err
		}
		write = refs.Ens.SaveBinary
	case refs.DB != nil:
		if strings.EqualFold(filepath.Ext(path), ".json") {
			write = refs.DB.Save
		} else {
			write = refs.DB.SaveBinary
		}
	default:
		return fmt.Errorf("no references to checkpoint")
	}
	return checkpoint.SaveRetry(path, opts, write, VerifyReferencesHeader)
}

// CheckEnsembleSave rejects a checkpoint path that cannot hold fused
// references: there is no JSON interop form for ensembles, so a .json
// path would either lie about its contents or fail at checkpoint time
// — after the daemon has learned everything it is about to lose. One
// policy, shared by the save path and the commands' fail-fast checks.
func CheckEnsembleSave(path string) error {
	if strings.EqualFold(filepath.Ext(path), ".json") {
		return fmt.Errorf("multi-parameter references checkpoint in the binary container; use a non-.json path for %s", path)
	}
	return nil
}

// CheckSavePath fails fast when a checkpoint path is not writable — a
// daemon that discovers a typo'd -save directory only at its first
// SIGHUP (or at shutdown) has already lost everything it learned. The
// probe creates and removes a temp file beside the target, the same
// write SaveDatabaseFile will later perform.
func CheckSavePath(path string) error {
	if info, err := os.Stat(path); err == nil && info.IsDir() {
		return fmt.Errorf("checkpoint path %s is a directory", path)
	}
	probe, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".probe*")
	if err != nil {
		return fmt.Errorf("checkpoint path is not writable: %w", err)
	}
	_ = probe.Close() // nothing was written; the probe is removed on the next line
	return os.Remove(probe.Name())
}

// Printer renders engine events as one line each on w — the monitoring
// commands' shared output format. stamp renders a window bound
// (trace-time µs) the way the command's clock works: wall time for a
// single capture, stream offset for a multi-source merge. verbose also
// prints below-minimum and evicted drops and enrollment progress.
func Printer(w io.Writer, stamp func(us int64) string, verbose bool) func(dot11fp.Event) {
	return func(ev dot11fp.Event) {
		switch ev := ev.(type) {
		case dot11fp.CandidateMatched:
			fmt.Fprintf(w, "w%03d  %s  matched  %s  sim=%.4f  obs=%d\n",
				ev.Window, ev.Addr, ev.Best.Addr, ev.Best.Sim, ev.Observations())
		case dot11fp.UnknownDevice:
			if ev.HasBest {
				fmt.Fprintf(w, "w%03d  %s  UNKNOWN  (best %s sim=%.4f)  obs=%d\n",
					ev.Window, ev.Addr, ev.Best.Addr, ev.Best.Sim, ev.Observations())
			} else {
				fmt.Fprintf(w, "w%03d  %s  UNKNOWN  (no references)  obs=%d\n",
					ev.Window, ev.Addr, ev.Observations())
			}
		case dot11fp.CandidateDropped:
			if verbose {
				if ev.Evicted {
					fmt.Fprintf(w, "w%03d  %s  evicted  %d observations\n",
						ev.Window, ev.Addr, ev.Observations)
				} else {
					fmt.Fprintf(w, "w%03d  %s  dropped  %d/%d observations\n",
						ev.Window, ev.Addr, ev.Observations, ev.Minimum)
				}
			}
		case dot11fp.EnrollmentProgress:
			if verbose {
				fmt.Fprintf(w, "w%03d  %s  enrolling  %d/%d windows, %d observations\n",
					ev.Window, ev.Addr, ev.Windows, ev.Horizon, ev.Observations)
			}
		case dot11fp.DeviceEnrolled:
			fmt.Fprintf(w, "w%03d  %s  ENROLLED  after %d windows, %d observations (%d references)\n",
				ev.Window, ev.Addr, ev.Windows, ev.Observations, ev.Refs)
		case dot11fp.DBSwapped:
			fmt.Fprintf(w, "-- references v%d installed: %d devices (%d enrolled, %d updated)\n",
				ev.Version, ev.Refs, ev.Enrolled, ev.Updated)
		case dot11fp.WindowClosed:
			fmt.Fprintf(w, "-- window %d [%s, %s): %d frames, %d senders, %d candidates (%d matched, %d unknown), %d dropped\n",
				ev.Window, stamp(ev.Start), stamp(ev.End), ev.Frames,
				ev.Senders, ev.Candidates, ev.Matched, ev.Unknown, ev.Dropped)
		}
	}
}

// StatsLine prints one operator-readable counters snapshot, prefixed
// with the command name.
func StatsLine(w io.Writer, prefix string, st dot11fp.EngineStats) {
	fmt.Fprintf(w,
		"%s: %d frames in %v (%.0f frames/s), %d live senders, %d windows, %d candidates (%d matched, %d unknown), %d dropped senders (%d evicted), %d dropped frames\n",
		prefix, st.Frames, st.Elapsed.Round(time.Millisecond), st.FramesPerSec, st.LiveSenders,
		st.WindowsClosed, st.Candidates, st.Matched, st.Unknown,
		st.Dropped, st.Evicted, st.DroppedFrames)
}

// Degraded reports a run that only kept going because supervision
// absorbed unrecoverable faults: recovered panics, or a source that
// exhausted its reopen attempts. One definition, shared by
// fingerprintd's exit-3 policy and the HTTP server's per-site status —
// transient faults (a source down but still reopening, reopens that
// succeeded) do not count; HealthLine still reports them.
func Degraded(h dot11fp.EngineHealth, srcs []dot11fp.SourceStats) bool {
	if h.Panics() > 0 {
		return true
	}
	for _, s := range srcs {
		if s.Permanent {
			return true
		}
	}
	return false
}

// HealthLine prints one operator-readable supervision snapshot: engine
// health (recovered panics, stalled shards) and per-source supervision
// counters. It prints nothing when everything is clean and no source
// has ever faulted — the common case stays quiet.
func HealthLine(w io.Writer, prefix string, h dot11fp.EngineHealth, srcs []dot11fp.SourceStats) {
	degraded := !h.Healthy()
	for _, s := range srcs {
		if s.Failures > 0 || s.Reopens > 0 || s.Down {
			degraded = true
		}
	}
	if !degraded {
		return
	}
	fmt.Fprintf(w, "%s: health: %d recovered panics (%d shard, %d merger, %d trainer, %d engine)",
		prefix, h.Panics(), h.ShardPanics, h.MergerPanics, h.TrainerPanics, h.EnginePanics)
	if len(h.StalledShards) > 0 {
		fmt.Fprintf(w, ", stalled shards %v", h.StalledShards)
	}
	if h.LastPanic != "" {
		fmt.Fprintf(w, ", last panic: %s", h.LastPanic)
	}
	fmt.Fprintln(w)
	for i, s := range srcs {
		if s.Failures == 0 && s.Reopens == 0 && !s.Down {
			continue
		}
		state := "up"
		switch {
		case s.Permanent:
			state = "permanently down"
		case s.Down:
			state = "down, reopening"
		}
		fmt.Fprintf(w, "%s: source %d: %s, %d records, %d decode errors, %d failures, %d reopens\n",
			prefix, i, state, s.Records, s.DecodeErrors, s.Failures, s.Reopens)
	}
}

// TrainerLine prints one operator-readable enrollment snapshot. Denied
// counts skipped candidate observations (one per window a deny-listed
// sender stays active) and Rejected counts confirm-refused senders —
// different units, so they are reported separately.
func TrainerLine(w io.Writer, prefix string, st dot11fp.TrainerStats) {
	fmt.Fprintf(w,
		"%s: enrollment: %d references (%d enrolled live, %d updates, %d swaps), %d pending, %d rejected, %d denied observations\n",
		prefix, st.Refs, st.Enrolled, st.Updated, st.Swaps, st.Pending, st.Rejected, st.Denied)
}
