// Package cmdutil holds the helpers the monitoring commands — livemon
// and fingerprintd — share, so training and stats reporting cannot
// drift between the two binaries.
package cmdutil

import (
	"fmt"
	"io"
	"time"

	"dot11fp"
)

// TrainFromStream materialises only the training prefix of a record
// stream (records with T within refDur of the first record), builds
// the reference database, and hands back the boundary record so
// monitoring starts exactly where training stopped — Split's
// anchoring, streamed. Works over any record source: a single pcap
// stream or a multi-source merge.
func TrainFromStream(stream dot11fp.RecordSource, refDur time.Duration, paramName, measureName string) (*dot11fp.Database, *dot11fp.Record, error) {
	param, err := dot11fp.ParamByShortName(paramName)
	if err != nil {
		return nil, nil, err
	}
	measure, err := dot11fp.MeasureByName(measureName)
	if err != nil {
		return nil, nil, err
	}
	train := &dot11fp.Trace{}
	var cut int64
	for {
		rec, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		if len(train.Records) == 0 {
			cut = rec.T + refDur.Microseconds()
		}
		if rec.T >= cut {
			db := dot11fp.NewDatabase(dot11fp.DefaultConfig(param), measure)
			if err := db.Train(train); err != nil {
				return nil, nil, err
			}
			return db, &rec, nil
		}
		train.Records = append(train.Records, rec)
	}
	return nil, nil, fmt.Errorf("stream ended inside the %v training prefix (%d records)", refDur, len(train.Records))
}

// Printer renders engine events as one line each on stdout — the
// monitoring commands' shared output format. stamp renders a window
// bound (trace-time µs) the way the command's clock works: wall time
// for a single capture, stream offset for a multi-source merge.
// verbose also prints below-minimum and evicted drops.
func Printer(stamp func(us int64) string, verbose bool) func(dot11fp.Event) {
	return func(ev dot11fp.Event) {
		switch ev := ev.(type) {
		case dot11fp.CandidateMatched:
			fmt.Printf("w%03d  %s  matched  %s  sim=%.4f  obs=%d\n",
				ev.Window, ev.Addr, ev.Best.Addr, ev.Best.Sim, ev.Sig.Observations())
		case dot11fp.UnknownDevice:
			if ev.HasBest {
				fmt.Printf("w%03d  %s  UNKNOWN  (best %s sim=%.4f)  obs=%d\n",
					ev.Window, ev.Addr, ev.Best.Addr, ev.Best.Sim, ev.Sig.Observations())
			} else {
				fmt.Printf("w%03d  %s  UNKNOWN  (no references)  obs=%d\n",
					ev.Window, ev.Addr, ev.Sig.Observations())
			}
		case dot11fp.CandidateDropped:
			if verbose {
				if ev.Evicted {
					fmt.Printf("w%03d  %s  evicted  %d observations\n",
						ev.Window, ev.Addr, ev.Observations)
				} else {
					fmt.Printf("w%03d  %s  dropped  %d/%d observations\n",
						ev.Window, ev.Addr, ev.Observations, ev.Minimum)
				}
			}
		case dot11fp.WindowClosed:
			fmt.Printf("-- window %d [%s, %s): %d frames, %d senders, %d candidates (%d matched, %d unknown), %d dropped\n",
				ev.Window, stamp(ev.Start), stamp(ev.End), ev.Frames,
				ev.Senders, ev.Candidates, ev.Matched, ev.Unknown, ev.Dropped)
		}
	}
}

// StatsLine prints one operator-readable counters snapshot, prefixed
// with the command name.
func StatsLine(w io.Writer, prefix string, st dot11fp.EngineStats) {
	fmt.Fprintf(w,
		"%s: %d frames in %v (%.0f frames/s), %d live senders, %d windows, %d candidates (%d matched, %d unknown), %d dropped senders (%d evicted), %d dropped frames\n",
		prefix, st.Frames, st.Elapsed.Round(time.Millisecond), st.FramesPerSec, st.LiveSenders,
		st.WindowsClosed, st.Candidates, st.Matched, st.Unknown,
		st.Dropped, st.Evicted, st.DroppedFrames)
}
