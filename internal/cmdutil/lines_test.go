package cmdutil

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dot11fp"
)

// TestStatsLineFormat pins the operator stats line: every counter
// present, in the documented order, under the command prefix.
func TestStatsLineFormat(t *testing.T) {
	var buf bytes.Buffer
	StatsLine(&buf, "testd", dot11fp.EngineStats{
		Frames: 1000, DroppedFrames: 7, WindowsClosed: 4, LiveSenders: 12,
		Candidates: 40, Matched: 30, Unknown: 10, Dropped: 5, Evicted: 2,
		Elapsed: 1500 * time.Millisecond, FramesPerSec: 666.7,
	})
	want := "testd: 1000 frames in 1.5s (667 frames/s), 12 live senders, 4 windows, 40 candidates (30 matched, 10 unknown), 5 dropped senders (2 evicted), 7 dropped frames\n"
	if got := buf.String(); got != want {
		t.Fatalf("stats line drifted:\n got  %q\n want %q", got, want)
	}
}

// TestTrainerLineFormat pins the enrollment line.
func TestTrainerLineFormat(t *testing.T) {
	var buf bytes.Buffer
	TrainerLine(&buf, "testd", dot11fp.TrainerStats{
		Refs: 9, Pending: 3, Enrolled: 8, Updated: 20, Swaps: 6,
		Denied: 11, Rejected: 2,
	})
	want := "testd: enrollment: 9 references (8 enrolled live, 20 updates, 6 swaps), 3 pending, 2 rejected, 11 denied observations\n"
	if got := buf.String(); got != want {
		t.Fatalf("trainer line drifted:\n got  %q\n want %q", got, want)
	}
}

// TestHealthLineQuietWhenClean pins the common case: a clean engine
// over sources that never faulted prints nothing at all.
func TestHealthLineQuietWhenClean(t *testing.T) {
	var buf bytes.Buffer
	HealthLine(&buf, "testd", dot11fp.EngineHealth{}, []dot11fp.SourceStats{
		{Records: 100}, {Records: 200},
	})
	if buf.Len() != 0 {
		t.Fatalf("clean health printed %q, want nothing", buf.String())
	}
}

// TestHealthLineFormat pins the degraded report: the panic breakdown,
// stalled shards and last panic on the first line, then one line per
// source that ever faulted (quiet sources stay quiet).
func TestHealthLineFormat(t *testing.T) {
	var buf bytes.Buffer
	h := dot11fp.EngineHealth{
		ShardPanics: 2, TrainerPanics: 1,
		LastPanic:     "shard: boom",
		StalledShards: []int{3},
	}
	srcs := []dot11fp.SourceStats{
		{Records: 100}, // never faulted: no line
		{Records: 50, DecodeErrors: 4, Failures: 2, Reopens: 1, Down: true},
		{Records: 10, Failures: 5, Permanent: true},
	}
	HealthLine(&buf, "testd", h, srcs)
	want := strings.Join([]string{
		"testd: health: 3 recovered panics (2 shard, 0 merger, 1 trainer, 0 engine), stalled shards [3], last panic: shard: boom",
		"testd: source 1: down, reopening, 50 records, 4 decode errors, 2 failures, 1 reopens",
		"testd: source 2: permanently down, 10 records, 0 decode errors, 5 failures, 0 reopens",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("health line drifted:\n got  %q\n want %q", got, want)
	}
}

// TestDegraded pins the shared degraded-run definition: unrecoverable
// faults only — recovered panics or a permanently down source count,
// transient downs and successful reopens do not.
func TestDegraded(t *testing.T) {
	cases := []struct {
		name string
		h    dot11fp.EngineHealth
		srcs []dot11fp.SourceStats
		want bool
	}{
		{"clean", dot11fp.EngineHealth{}, []dot11fp.SourceStats{{Records: 1}}, false},
		{"panic", dot11fp.EngineHealth{MergerPanics: 1}, nil, true},
		{"permanent source", dot11fp.EngineHealth{}, []dot11fp.SourceStats{{Permanent: true}}, true},
		{"transient down", dot11fp.EngineHealth{}, []dot11fp.SourceStats{{Down: true, Failures: 3}}, false},
		{"survived reopen", dot11fp.EngineHealth{}, []dot11fp.SourceStats{{Reopens: 2, Failures: 2}}, false},
	}
	for _, tc := range cases {
		if got := Degraded(tc.h, tc.srcs); got != tc.want {
			t.Errorf("%s: Degraded = %v, want %v", tc.name, got, tc.want)
		}
	}
}
