package prism

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	t.Parallel()
	h := Header{
		MACTime: 123_456_789, HostTime: 42,
		PhyType: PhyTypeOFDM, Channel: 6,
		DataRate: 540, Antenna: 1, Priority: 0,
		SSIType: SSITypeDBm, SSISignal: -47, SSINoise: -95,
		Preamble: 1, Encoding: 3,
	}
	raw := h.Encode()
	if len(raw) != HeaderLen {
		t.Fatalf("encoded length = %d, want %d", len(raw), HeaderLen)
	}
	got, n, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if n != HeaderLen {
		t.Fatalf("decoded length = %d", n)
	}
	if got != h {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

func TestRateMbps(t *testing.T) {
	t.Parallel()
	var h Header
	h.SetRateMbps(5.5)
	if h.DataRate != 55 {
		t.Errorf("5.5 Mb/s -> %d units, want 55", h.DataRate)
	}
	if got := h.RateMbps(); got != 5.5 {
		t.Errorf("RateMbps = %v", got)
	}
	h.SetRateMbps(54)
	if h.RateMbps() != 54 {
		t.Errorf("54 Mb/s round trip = %v", h.RateMbps())
	}
}

func TestDecodeErrors(t *testing.T) {
	t.Parallel()
	if _, _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("nil: %v", err)
	}
	if _, _, err := Decode(make([]byte, 4)); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v", err)
	}
	bad := make([]byte, HeaderLen)
	if _, _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("zero magic: %v", err)
	}
	h := Header{MACTime: 1}
	raw := h.Encode()
	if _, _, err := Decode(raw[:32]); !errors.Is(err, ErrTruncated) {
		t.Errorf("cut body: %v", err)
	}
	// Declared length below the fixed size is rejected.
	raw2 := h.Encode()
	raw2[7] = 8
	if _, _, err := Decode(raw2); !errors.Is(err, ErrTruncated) {
		t.Errorf("short declared length: %v", err)
	}
}

func TestDecodeWithTrailingFrame(t *testing.T) {
	t.Parallel()
	h := Header{MACTime: 777, DataRate: 110, SSIType: SSITypeDBm, SSISignal: -60}
	raw := append(h.Encode(), []byte("frame-bytes")...)
	got, n, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw[n:]) != "frame-bytes" {
		t.Fatal("payload corrupted")
	}
	if got.MACTime != 777 {
		t.Fatalf("MACTime = %d", got.MACTime)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(mac, host uint64, rate uint32, sig int32) bool {
		h := Header{MACTime: mac, HostTime: host, DataRate: rate, SSISignal: sig, SSIType: SSITypeDBm}
		got, n, err := Decode(h.Encode())
		return err == nil && n == HeaderLen && got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
