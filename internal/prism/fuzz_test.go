package prism

import (
	"encoding/binary"
	"testing"
)

// FuzzParse hammers Decode with arbitrary bytes: the AVS header parser
// sits directly behind pcap input, so it must reject or decode every
// byte sequence without panicking or over-reading, and every
// successful decode must be self-consistent under re-encoding.
func FuzzParse(f *testing.F) {
	f.Add((&Header{}).Encode())
	full := &Header{
		MACTime: 123456789, HostTime: 987654321,
		PhyType: PhyTypeOFDM, Channel: 11,
		Antenna: 1, Priority: 0,
		SSIType: SSITypeDBm, SSISignal: -40, SSINoise: -92,
		Preamble: 2, Encoding: 3,
	}
	full.SetRateMbps(54)
	f.Add(full.Encode())
	enc := full.Encode()
	f.Add(enc[:7])
	f.Add(enc[:HeaderLen-1])
	// Bad magic and an over-long declared header.
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xFF
	f.Add(bad)
	long := append([]byte(nil), enc...)
	binary.BigEndian.PutUint32(long[4:8], 80)
	f.Add(long)

	f.Fuzz(func(t *testing.T, raw []byte) {
		h, n, err := Decode(raw)
		if err != nil {
			return
		}
		if n < HeaderLen || n > len(raw) {
			t.Fatalf("decoded length %d outside [%d, %d]", n, HeaderLen, len(raw))
		}
		re := h.Encode()
		h2, n2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded header does not decode: %v", err)
		}
		if n2 != HeaderLen {
			t.Fatalf("re-encoded header length %d, want %d", n2, HeaderLen)
		}
		if h2 != h {
			t.Fatalf("round trip drifted:\n got %+v\nwant %+v", h2, h)
		}
	})
}
