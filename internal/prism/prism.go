// Package prism implements the AVS WLAN capture header ("Prism" in
// libpcap parlance, LINKTYPE_IEEE802_11_PRISM = 119), the second
// capture-metadata format the paper's method accepts (§III: "we focus
// on information that we can extract solely from Radiotap or Prism
// headers").
//
// The AVS header is a fixed 64-byte big-endian structure carrying the
// same measurements the fingerprint pipeline needs: MAC timestamp,
// data rate and signal strength.
package prism

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic values of the AVS capture header.
const (
	// MagicV1 identifies version 1 of the AVS header.
	MagicV1 = 0x80211001
	// HeaderLen is the fixed encoded size.
	HeaderLen = 64
)

// PHY types (subset).
const (
	PhyTypeDSSS    = 2 // 802.11b
	PhyTypeOFDM    = 8 // 802.11g
	PhyTypeUnknown = 0
)

// Header is a decoded AVS capture header.
type Header struct {
	// MACTime is the µs-resolution MAC timestamp at end of reception.
	MACTime uint64
	// HostTime is the host clock sample (opaque units).
	HostTime uint64
	// PhyType identifies the modulation family.
	PhyType uint32
	// Channel is the channel number.
	Channel uint32
	// DataRate is the reception rate in 100 kb/s units.
	DataRate uint32
	// Antenna is the receive antenna index.
	Antenna uint32
	// Priority is the capture priority field.
	Priority uint32
	// SSIType describes how to read the signal fields (1 = dBm).
	SSIType uint32
	// SSISignal is the received signal strength.
	SSISignal int32
	// SSINoise is the noise floor.
	SSINoise int32
	// Preamble codes the PLCP preamble (1 = short, 2 = long).
	Preamble uint32
	// Encoding codes the bit encoding (1 = CCK, 3 = OFDM).
	Encoding uint32
}

// SSI types.
const (
	SSITypeNone = 0
	SSITypeDBm  = 1
	SSITypeRaw  = 3
)

// Errors.
var (
	ErrTruncated = errors.New("prism: truncated header")
	ErrBadMagic  = errors.New("prism: unrecognised version magic")
)

// RateMbps returns the data rate in Mb/s.
func (h *Header) RateMbps() float64 { return float64(h.DataRate) / 10 }

// SetRateMbps stores a rate given in Mb/s.
func (h *Header) SetRateMbps(mbps float64) { h.DataRate = uint32(mbps*10 + 0.5) }

// Encode serialises the header (64 bytes, big-endian, version 1).
func (h *Header) Encode() []byte {
	buf := make([]byte, HeaderLen)
	be := binary.BigEndian
	be.PutUint32(buf[0:4], MagicV1)
	be.PutUint32(buf[4:8], HeaderLen)
	be.PutUint64(buf[8:16], h.MACTime)
	be.PutUint64(buf[16:24], h.HostTime)
	be.PutUint32(buf[24:28], h.PhyType)
	be.PutUint32(buf[28:32], h.Channel)
	be.PutUint32(buf[32:36], h.DataRate)
	be.PutUint32(buf[36:40], h.Antenna)
	be.PutUint32(buf[40:44], h.Priority)
	be.PutUint32(buf[44:48], h.SSIType)
	be.PutUint32(buf[48:52], uint32(h.SSISignal))
	be.PutUint32(buf[52:56], uint32(h.SSINoise))
	be.PutUint32(buf[56:60], h.Preamble)
	be.PutUint32(buf[60:64], h.Encoding)
	return buf
}

// Decode parses an AVS header from the front of raw, returning the
// header and its encoded length (so raw[n:] is the 802.11 frame).
func Decode(raw []byte) (Header, int, error) {
	var h Header
	if len(raw) < 8 {
		return h, 0, fmt.Errorf("%w: %d bytes", ErrTruncated, len(raw))
	}
	be := binary.BigEndian
	magic := be.Uint32(raw[0:4])
	if magic != MagicV1 {
		return h, 0, fmt.Errorf("%w: %#x", ErrBadMagic, magic)
	}
	hlen := int(be.Uint32(raw[4:8]))
	if hlen < HeaderLen {
		return h, 0, fmt.Errorf("%w: declared length %d", ErrTruncated, hlen)
	}
	if len(raw) < hlen {
		return h, 0, fmt.Errorf("%w: have %d of %d bytes", ErrTruncated, len(raw), hlen)
	}
	h.MACTime = be.Uint64(raw[8:16])
	h.HostTime = be.Uint64(raw[16:24])
	h.PhyType = be.Uint32(raw[24:28])
	h.Channel = be.Uint32(raw[28:32])
	h.DataRate = be.Uint32(raw[32:36])
	h.Antenna = be.Uint32(raw[36:40])
	h.Priority = be.Uint32(raw[40:44])
	h.SSIType = be.Uint32(raw[44:48])
	h.SSISignal = int32(be.Uint32(raw[48:52]))
	h.SSINoise = int32(be.Uint32(raw[52:56]))
	h.Preamble = be.Uint32(raw[56:60])
	h.Encoding = be.Uint32(raw[60:64])
	return h, hlen, nil
}
