package capture

import (
	"errors"
	"io"
	"sync"
)

// MergeMode selects how MultiStream interleaves its sources.
type MergeMode uint8

const (
	// MergeByTime interleaves records in ascending timestamp order (a
	// k-way merge over the per-source heads) — deterministic for file
	// inputs whose sources share a timebase (or are rebased). A stalled
	// source stalls the merge, so use MergeArrival for unsynchronised
	// live feeds.
	MergeByTime MergeMode = iota
	// MergeArrival interleaves records as they become available from
	// any source — the right mode for live FIFOs and stdin feeds, at
	// the cost of a nondeterministic (arrival-dependent) interleaving.
	MergeArrival
)

// RecordSource is anything that yields capture records one at a time,
// ending with io.EOF. StreamReader implements it.
type RecordSource interface {
	Next() (Record, error)
}

// MultiStream merges several record sources into one stream — several
// monitors (or several pcap files / FIFOs) feeding one fingerprinting
// engine. Each source is decoded on its own goroutine with a small
// prefetch buffer, so slow inputs overlap; the merge itself preserves
// each source's internal order.
//
// With Rebase, each source's timestamps are shifted so its first record
// lands at offset zero — aligning captures whose clocks never shared an
// epoch. Without it, sources are assumed to share a timebase.
//
// Next must be called from a single goroutine. Close may be called from
// any goroutine to stop the stream early: pending sources are released
// and Next returns io.EOF once the buffered records run out.
type MultiStream struct {
	mode    MergeMode
	heads   []multiHead   // MergeByTime: one pending record per live source
	shared  chan srcEvent // MergeArrival: fan-in of every source
	stop    chan struct{}
	stopped sync.Once
	live    int

	mu   sync.Mutex
	errs []error
}

// multiHead is one source's prefetch state in by-time mode.
type multiHead struct {
	ch  chan srcEvent
	rec Record
	ok  bool
}

// srcEvent is one decoded record or a source's terminal error.
type srcEvent struct {
	rec Record
	err error // io.EOF for clean end of source
}

// multiPrefetch is the per-source decode depth. Large enough to keep
// decode goroutines busy across merge scheduling, small enough that
// Close never strands much work.
const multiPrefetch = 512

// NewMultiStream merges the given sources. rebase shifts each source's
// timestamps so its first record is at offset zero.
func NewMultiStream(mode MergeMode, rebase bool, sources ...RecordSource) *MultiStream {
	m := &MultiStream{
		mode: mode,
		stop: make(chan struct{}),
		live: len(sources),
	}
	if mode == MergeArrival {
		m.shared = make(chan srcEvent, multiPrefetch)
		for _, src := range sources {
			go m.pump(src, m.shared, rebase)
		}
		return m
	}
	m.heads = make([]multiHead, len(sources))
	for i, src := range sources {
		ch := make(chan srcEvent, multiPrefetch)
		m.heads[i] = multiHead{ch: ch}
		go m.pump(src, ch, rebase)
	}
	return m
}

// pump decodes one source into its channel until EOF, error, or Close.
func (m *MultiStream) pump(src RecordSource, ch chan srcEvent, rebase bool) {
	var offset int64
	first := true
	for {
		rec, err := src.Next()
		if err == nil && rebase {
			if first {
				offset = rec.T
				first = false
			}
			rec.T -= offset
		}
		select {
		case ch <- srcEvent{rec: rec, err: err}:
		case <-m.stop:
			return
		}
		if err != nil {
			return
		}
	}
}

// fill tops up a by-time head, retiring the source at EOF, error, or
// Close (buffered records are drained first). Reports whether the head
// holds a record.
func (m *MultiStream) fill(h *multiHead) bool {
	if h.ok || h.ch == nil {
		return h.ok
	}
	var ev srcEvent
	select {
	case ev = <-h.ch:
	default:
		select {
		case ev = <-h.ch:
		case <-m.stop:
			h.ch = nil
			return false
		}
	}
	if ev.err != nil {
		if ev.err != io.EOF {
			m.mu.Lock()
			m.errs = append(m.errs, ev.err)
			m.mu.Unlock()
		}
		h.ch = nil
		m.live--
		return false
	}
	h.rec, h.ok = ev.rec, true
	return true
}

// Next returns the next merged record, or io.EOF when every source has
// ended (check Err for per-source failures — a failed source retires,
// it does not abort the merge).
func (m *MultiStream) Next() (Record, error) {
	if m.mode == MergeArrival {
		for m.live > 0 {
			var ev srcEvent
			select {
			case ev = <-m.shared:
			default:
				select {
				case ev = <-m.shared:
				case <-m.stop:
					return Record{}, io.EOF
				}
			}
			if ev.err != nil {
				if ev.err != io.EOF {
					m.mu.Lock()
					m.errs = append(m.errs, ev.err)
					m.mu.Unlock()
				}
				m.live--
				continue
			}
			return ev.rec, nil
		}
		return Record{}, io.EOF
	}
	best := -1
	for i := range m.heads {
		if !m.fill(&m.heads[i]) {
			continue
		}
		if best < 0 || m.heads[i].rec.T < m.heads[best].rec.T {
			best = i
		}
	}
	if best < 0 {
		return Record{}, io.EOF
	}
	m.heads[best].ok = false
	return m.heads[best].rec, nil
}

// Close stops the stream: decode goroutines are released and Next
// drains to io.EOF. Safe to call from any goroutine, more than once.
func (m *MultiStream) Close() {
	m.stopped.Do(func() { close(m.stop) })
}

// Err returns the accumulated per-source decode errors, joined, or nil.
func (m *MultiStream) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return errors.Join(m.errs...)
}
