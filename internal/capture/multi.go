package capture

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// MergeMode selects how MultiStream interleaves its sources.
type MergeMode uint8

const (
	// MergeByTime interleaves records in ascending timestamp order (a
	// k-way merge over the per-source heads) — deterministic for file
	// inputs whose sources share a timebase (or are rebased). A stalled
	// source stalls the merge, so use MergeArrival for unsynchronised
	// live feeds.
	MergeByTime MergeMode = iota
	// MergeArrival interleaves records as they become available from
	// any source — the right mode for live FIFOs and stdin feeds, at
	// the cost of a nondeterministic (arrival-dependent) interleaving.
	MergeArrival
)

// RecordSource is anything that yields capture records one at a time,
// ending with io.EOF. StreamReader implements it.
type RecordSource interface {
	Next() (Record, error)
}

// skipCounter is the optional decode-skip counter a source can expose
// (StreamReader does); MultiStream uses it for per-source stats and
// the circuit breaker.
type skipCounter interface {
	Skipped() uint64
}

// Supervisor configures per-source supervision for a MultiStream. The
// zero value supervises nothing (sources retire on their first error,
// the pre-supervision behaviour); setting Reopen enables reopen with
// retry, exponential backoff and jitter, and setting BreakerWindow
// enables the decode-error circuit breaker.
type Supervisor struct {
	// Reopen rebuilds source i after a failure. It runs on the pump
	// goroutine (so it may block in open(2) on a FIFO) and its error
	// counts as one failed attempt. nil disables reopening: any source
	// error is terminal for that source.
	Reopen func(source int) (RecordSource, error)
	// ReopenOnEOF reports whether a clean io.EOF from source i should
	// trigger a reopen too — true for FIFOs, where EOF just means the
	// writer hung up; false (or nil) for files, where EOF is the end.
	ReopenOnEOF func(source int) bool
	// MaxAttempts bounds consecutive failed reopen attempts before the
	// source is declared permanently down. 0 selects 8; negative means
	// retry forever.
	MaxAttempts int
	// Backoff is the delay before the first reopen attempt, doubling
	// per failure up to MaxBackoff, each wait jittered ±50%. 0 selects
	// 100 ms.
	Backoff time.Duration
	// MaxBackoff caps the doubling. 0 selects 30 s.
	MaxBackoff time.Duration
	// BreakerWindow enables the per-source circuit breaker: over a
	// rolling window of this many reads, a decode-error fraction of
	// BreakerRate or more fails the source with ErrBreakerTripped
	// (which then reopens like any failure, with backoff — so a
	// decode-error storm degrades the source instead of spinning the
	// CPU on garbage). 0 disables.
	BreakerWindow int
	// BreakerRate is the tripping decode-error fraction; 0 selects 0.5.
	BreakerRate float64
	// Seed seeds the backoff jitter, making chaos runs replayable.
	Seed int64
	// Notify, when non-nil, receives SourceDown/SourceUp events. It is
	// called from pump goroutines and must not call back into the
	// MultiStream.
	Notify func(SourceEvent)
}

func (s *Supervisor) enabled() bool { return s.Reopen != nil }

func (s *Supervisor) maxAttempts() int {
	switch {
	case s.MaxAttempts == 0:
		return 8
	case s.MaxAttempts < 0:
		return 0 // unlimited
	}
	return s.MaxAttempts
}

func (s *Supervisor) backoff() time.Duration {
	if s.Backoff <= 0 {
		return 100 * time.Millisecond
	}
	return s.Backoff
}

func (s *Supervisor) maxBackoff() time.Duration {
	if s.MaxBackoff <= 0 {
		return 30 * time.Second
	}
	return s.MaxBackoff
}

func (s *Supervisor) breakerRate() float64 {
	if s.BreakerRate <= 0 {
		return 0.5
	}
	return s.BreakerRate
}

func (s *Supervisor) reopenOnEOF(i int) bool {
	return s.ReopenOnEOF != nil && s.ReopenOnEOF(i)
}

func (s *Supervisor) notify(ev SourceEvent) {
	if s.Notify != nil {
		s.Notify(ev)
	}
}

// ErrBreakerTripped reports a source failed by its decode-error-rate
// circuit breaker.
var ErrBreakerTripped = errors.New("capture: decode-error rate tripped the source circuit breaker")

// SourceEvent is a supervision event: SourceDown or SourceUp.
type SourceEvent interface{ sourceEvent() }

// SourceDown reports a source failure. With Permanent false the
// supervisor is about to retry after Retry; with Permanent true the
// source has exhausted its attempts and is retired (its terminal error
// also lands in Err).
type SourceDown struct {
	Source    int
	Err       error
	Retry     time.Duration
	Permanent bool
}

func (SourceDown) sourceEvent() {}

// SourceUp reports a successful reopen after Attempts tries.
type SourceUp struct {
	Source   int
	Attempts int
}

func (SourceUp) sourceEvent() {}

// SourceStats is one source's supervision counters, a snapshot from
// MultiStream.SourceStats.
// The JSON field names are a stable API surface shared by the HTTP
// server and the /metrics encoder (TestSnapshotJSONStable pins them).
type SourceStats struct {
	// Records delivered into the merge.
	Records uint64 `json:"records"`
	// DecodeErrors skipped-and-counted by the source (undecodable
	// frames; see StreamReader.Skipped).
	DecodeErrors uint64 `json:"decode_errors"`
	// Failures is source errors plus failed reopen attempts.
	Failures uint64 `json:"failures"`
	// Reopens is successful reopens.
	Reopens uint64 `json:"reopens"`
	// Down reports the source is currently failed (reopening or
	// retired).
	Down bool `json:"down"`
	// Permanent reports the source exhausted its reopen attempts.
	Permanent bool `json:"permanent"`
}

// srcState is one source's supervision state. Counters are atomics so
// SourceStats can snapshot them from any goroutine without touching
// the pump's hot path with a lock; the breaker fields belong to the
// pump goroutine alone.
type srcState struct {
	records      atomic.Uint64
	decodeErrors atomic.Uint64
	failures     atomic.Uint64
	reopens      atomic.Uint64
	down         atomic.Bool
	permanent    atomic.Bool

	mu  sync.Mutex
	cur RecordSource // current generation, for Close to unblock

	// pump-goroutine-only rolling breaker window
	lastSkipped     uint64
	brTotal, brErrs int
}

func (st *srcState) setCur(src RecordSource) {
	st.mu.Lock()
	st.cur = src
	st.mu.Unlock()
	st.lastSkipped = 0
	st.brTotal, st.brErrs = 0, 0
}

// closeCur closes the source's current generation when it is closable,
// unblocking a pump stuck in a blocking read (a FIFO with a wedged
// writer, say).
func (st *srcState) closeCur() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if c, ok := st.cur.(io.Closer); ok {
		_ = c.Close() // closing to unblock the pump; the error has no reader
	}
}

// observe accounts one successful read on the pump goroutine: decode
// skips since the last read feed the stats counter and, when the
// breaker is enabled, the rolling error-rate window. A non-nil return
// is the breaker tripping.
func (st *srcState) observe(src RecordSource, sup *Supervisor) error {
	sc, ok := src.(skipCounter)
	if !ok {
		return nil
	}
	sk := sc.Skipped()
	d := sk - st.lastSkipped
	st.lastSkipped = sk
	if d > 0 {
		st.decodeErrors.Add(d)
	}
	if sup.BreakerWindow <= 0 {
		return nil
	}
	st.brErrs += int(d)
	st.brTotal += int(d) + 1
	if st.brTotal < sup.BreakerWindow {
		return nil
	}
	if float64(st.brErrs)/float64(st.brTotal) >= sup.breakerRate() {
		return fmt.Errorf("%w: %d of last %d reads", ErrBreakerTripped, st.brErrs, st.brTotal)
	}
	// Halve instead of resetting so the window rolls: a storm that
	// straddles a boundary still trips.
	st.brErrs /= 2
	st.brTotal /= 2
	return nil
}

// MultiStream merges several record sources into one stream — several
// monitors (or several pcap files / FIFOs) feeding one fingerprinting
// engine. Each source is decoded on its own goroutine with a small
// prefetch buffer, so slow inputs overlap; the merge itself preserves
// each source's internal order.
//
// With Rebase, each source's timestamps are shifted so its first record
// lands at offset zero — aligning captures whose clocks never shared an
// epoch. Without it, sources are assumed to share a timebase.
//
// With a Supervisor, a failed source is reopened with backoff instead
// of retiring: the stream degrades (SourceDown) and recovers
// (SourceUp) per source, and only a source that exhausts its attempts
// — or every source ending — terminates anything. A dead source never
// terminates Next for the healthy ones.
//
// Next must be called from a single goroutine. Close may be called from
// any goroutine to stop the stream early: pending sources are released
// (sources implementing io.Closer are closed, unblocking stuck reads)
// and Next returns io.EOF once the buffered records run out.
type MultiStream struct {
	mode    MergeMode
	sup     Supervisor
	heads   []multiHead   // MergeByTime: one pending record per live source
	shared  chan srcEvent // MergeArrival: fan-in of every source
	stop    chan struct{}
	stopped sync.Once
	live    int
	srcs    []*srcState

	mu   sync.Mutex
	errs []error
}

// multiHead is one source's prefetch state in by-time mode.
type multiHead struct {
	ch  chan srcEvent
	rec Record
	ok  bool
}

// srcEvent is one decoded record or a source's terminal error.
type srcEvent struct {
	rec Record
	err error // io.EOF for clean end of source
}

// multiPrefetch is the per-source decode depth. Large enough to keep
// decode goroutines busy across merge scheduling, small enough that
// Close never strands much work.
const multiPrefetch = 512

// MultiOptions configures NewMultiStreamOpts.
type MultiOptions struct {
	// Mode selects the merge discipline.
	Mode MergeMode
	// Rebase shifts each source's timestamps so its first record lands
	// at offset zero; after a supervised reopen, the new generation
	// continues at the last delivered timestamp + 1 µs, keeping the
	// source's stream monotonic across a restarted (fresh-epoch)
	// capture.
	Rebase bool
	// Supervisor configures per-source supervision; the zero value
	// supervises nothing.
	Supervisor Supervisor
}

// NewMultiStream merges the given sources without supervision. rebase
// shifts each source's timestamps so its first record is at offset
// zero.
func NewMultiStream(mode MergeMode, rebase bool, sources ...RecordSource) *MultiStream {
	return NewMultiStreamOpts(MultiOptions{Mode: mode, Rebase: rebase}, sources...)
}

// NewMultiStreamOpts merges the given sources with full options.
func NewMultiStreamOpts(opts MultiOptions, sources ...RecordSource) *MultiStream {
	m := &MultiStream{
		mode: opts.Mode,
		sup:  opts.Supervisor,
		stop: make(chan struct{}),
		live: len(sources),
		srcs: make([]*srcState, len(sources)),
	}
	for i := range m.srcs {
		m.srcs[i] = &srcState{}
	}
	if opts.Mode == MergeArrival {
		m.shared = make(chan srcEvent, multiPrefetch)
		for i, src := range sources {
			go m.pump(i, src, m.shared, opts.Rebase)
		}
		return m
	}
	m.heads = make([]multiHead, len(sources))
	for i, src := range sources {
		ch := make(chan srcEvent, multiPrefetch)
		m.heads[i] = multiHead{ch: ch}
		go m.pump(i, src, ch, opts.Rebase)
	}
	return m
}

// sleep waits d or until Close; it reports whether the wait completed.
func (m *MultiStream) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-m.stop:
		return false
	}
}

// jitter spreads a backoff uniformly over [d/2, d), so a fleet of
// sources failing together does not reopen in lockstep.
func jitter(d time.Duration, rng *rand.Rand) time.Duration {
	if rng == nil || d <= 1 {
		return d
	}
	return d/2 + time.Duration(rng.Int63n(int64(d/2)))
}

// pump decodes one source into its channel until EOF, terminal error,
// or Close — supervising the source through failures when a Reopen
// factory is configured.
func (m *MultiStream) pump(i int, src RecordSource, ch chan srcEvent, rebase bool) {
	st := m.srcs[i]
	st.setCur(src)
	var rng *rand.Rand
	if m.sup.enabled() {
		rng = rand.New(rand.NewSource(m.sup.Seed + int64(i)*0x9E3779B9))
	}
	var (
		offset   int64
		first    = true
		lastT    int64
		haveLast bool
		pending  error // breaker trip carried over a delivered record
	)
	for {
		var rec Record
		var err error
		if pending != nil {
			err, pending = pending, nil
		} else {
			rec, err = src.Next()
		}
		if err == nil {
			st.records.Add(1)
			// The tripping record itself is healthy — deliver it, fail
			// the source on the next iteration.
			pending = st.observe(src, &m.sup)
			if rebase {
				if first {
					if haveLast {
						// Reopened generation: splice onto the stream 1 µs
						// after the last delivered record so the source's
						// timestamps stay monotonic across a restart.
						offset = rec.T - (lastT + 1)
					} else {
						offset = rec.T
					}
					first = false
				}
				rec.T -= offset
			}
			lastT, haveLast = rec.T, true
			select {
			case ch <- srcEvent{rec: rec}:
			case <-m.stop:
				return
			}
			continue
		}
		eof := err == io.EOF
		if !eof {
			st.failures.Add(1)
		}
		if !m.sup.enabled() || (eof && !m.sup.reopenOnEOF(i)) {
			select {
			case ch <- srcEvent{err: err}:
			case <-m.stop:
			}
			return
		}
		// The source is down: close the dead generation, then reopen
		// with exponential backoff and jitter.
		if c, ok := src.(io.Closer); ok {
			_ = c.Close() // generation already dead; the read error is the one reported
		}
		st.down.Store(true)
		backoff := m.sup.backoff()
		for attempt := 1; ; attempt++ {
			if max := m.sup.maxAttempts(); max > 0 && attempt > max {
				st.permanent.Store(true)
				m.sup.notify(SourceDown{Source: i, Err: err, Permanent: true})
				select {
				case ch <- srcEvent{err: fmt.Errorf("capture: source %d: giving up after %d attempts: %w", i, max, err)}:
				case <-m.stop:
				}
				return
			}
			wait := jitter(backoff, rng)
			m.sup.notify(SourceDown{Source: i, Err: err, Retry: wait})
			if !m.sleep(wait) {
				return // closed during backoff
			}
			if backoff *= 2; backoff > m.sup.maxBackoff() {
				backoff = m.sup.maxBackoff()
			}
			next, rerr := m.sup.Reopen(i)
			if rerr != nil {
				st.failures.Add(1)
				err = rerr
				continue
			}
			src = next
			st.setCur(src)
			st.reopens.Add(1)
			st.down.Store(false)
			first = true // rebase splices the new generation (see above)
			m.sup.notify(SourceUp{Source: i, Attempts: attempt})
			break
		}
	}
}

// fill tops up a by-time head, retiring the source at EOF, error, or
// Close (buffered records are drained first). Reports whether the head
// holds a record.
func (m *MultiStream) fill(h *multiHead) bool {
	if h.ok || h.ch == nil {
		return h.ok
	}
	var ev srcEvent
	select {
	case ev = <-h.ch:
	default:
		select {
		case ev = <-h.ch:
		case <-m.stop:
			h.ch = nil
			return false
		}
	}
	if ev.err != nil {
		if ev.err != io.EOF {
			m.mu.Lock()
			m.errs = append(m.errs, ev.err)
			m.mu.Unlock()
		}
		h.ch = nil
		m.live--
		return false
	}
	h.rec, h.ok = ev.rec, true
	return true
}

// Next returns the next merged record, or io.EOF when every source has
// ended (check Err for per-source failures — a failed source retires,
// it does not abort the merge).
func (m *MultiStream) Next() (Record, error) {
	if m.mode == MergeArrival {
		for m.live > 0 {
			var ev srcEvent
			select {
			case ev = <-m.shared:
			default:
				select {
				case ev = <-m.shared:
				case <-m.stop:
					return Record{}, io.EOF
				}
			}
			if ev.err != nil {
				if ev.err != io.EOF {
					m.mu.Lock()
					m.errs = append(m.errs, ev.err)
					m.mu.Unlock()
				}
				m.live--
				continue
			}
			return ev.rec, nil
		}
		return Record{}, io.EOF
	}
	best := -1
	for i := range m.heads {
		if !m.fill(&m.heads[i]) {
			continue
		}
		if best < 0 || m.heads[i].rec.T < m.heads[best].rec.T {
			best = i
		}
	}
	if best < 0 {
		return Record{}, io.EOF
	}
	m.heads[best].ok = false
	return m.heads[best].rec, nil
}

// Close stops the stream: decode goroutines are released (sources
// implementing io.Closer are closed, so even a pump blocked in a read
// exits) and Next drains to io.EOF. Safe to call from any goroutine,
// more than once.
func (m *MultiStream) Close() {
	m.stopped.Do(func() {
		close(m.stop)
		for _, st := range m.srcs {
			st.closeCur()
		}
	})
}

// Err returns the accumulated per-source decode errors, joined, or nil.
func (m *MultiStream) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return errors.Join(m.errs...)
}

// SourceStats snapshots each source's supervision counters. Safe from
// any goroutine.
func (m *MultiStream) SourceStats() []SourceStats {
	out := make([]SourceStats, len(m.srcs))
	for i, st := range m.srcs {
		out[i] = SourceStats{
			Records:      st.records.Load(),
			DecodeErrors: st.decodeErrors.Load(),
			Failures:     st.failures.Load(),
			Reopens:      st.reopens.Load(),
			Down:         st.down.Load(),
			Permanent:    st.permanent.Load(),
		}
	}
	return out
}

// WithCloser attaches a Closer to a RecordSource, so MultiStream.Close
// (and supervised reopens) can unblock a source wedged in a blocking
// read — a StreamReader over a FIFO, closed via the underlying file.
// The source's Skipped counter, if any, is preserved.
func WithCloser(src RecordSource, c io.Closer) RecordSource {
	return &closerSource{src: src, c: c}
}

type closerSource struct {
	src RecordSource
	c   io.Closer
}

func (s *closerSource) Next() (Record, error) { return s.src.Next() }
func (s *closerSource) Close() error          { return s.c.Close() }
func (s *closerSource) Skipped() uint64 {
	if sc, ok := s.src.(skipCounter); ok {
		return sc.Skipped()
	}
	return 0
}
