package capture

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"

	"dot11fp/internal/dot11"
	"dot11fp/internal/pcap"
)

func sampleTrace() *Trace {
	sta1 := dot11.LocalAddr(1)
	sta2 := dot11.LocalAddr(2)
	ap := dot11.LocalAddr(1000)
	return &Trace{
		Name:    "test",
		Base:    time.Date(2026, 6, 11, 9, 0, 0, 0, time.UTC),
		Channel: 6,
		Records: []Record{
			{T: 0, Sender: ap, Receiver: dot11.Broadcast, Class: dot11.ClassBeacon, Size: 120, RateMbps: 1, FCSOK: true, SignalDBm: -40},
			{T: 1500, Sender: sta1, Receiver: ap, Class: dot11.ClassData, Size: 1528, RateMbps: 54, FCSOK: true, SignalDBm: -55},
			{T: 1550, Sender: dot11.ZeroAddr, Receiver: sta1, Class: dot11.ClassACK, Size: 14, RateMbps: 24, FCSOK: true, SignalDBm: -40},
			{T: 2600, Sender: sta2, Receiver: ap, Class: dot11.ClassQoSData, Size: 230, RateMbps: 11, Retry: true, FCSOK: true, SignalDBm: -61},
			{T: 2700, Sender: sta1, Receiver: ap, Class: dot11.ClassNull, Size: 28, RateMbps: 54, FCSOK: true, SignalDBm: -54},
			{T: 3000, Sender: sta2, Receiver: dot11.Broadcast, Class: dot11.ClassProbeReq, Size: 68, RateMbps: 1, FCSOK: true, SignalDBm: -62},
			{T: 3400, Sender: sta1, Receiver: ap, Class: dot11.ClassRTS, Size: 20, RateMbps: 11, FCSOK: true, SignalDBm: -55},
			{T: 3450, Sender: dot11.ZeroAddr, Receiver: sta1, Class: dot11.ClassCTS, Size: 14, RateMbps: 11, FCSOK: true, SignalDBm: -41},
			{T: 9000, Sender: sta2, Receiver: ap, Class: dot11.ClassData, Size: 900, RateMbps: 5.5, FCSOK: false, SignalDBm: -70},
		},
	}
}

func TestPcapRoundTrip(t *testing.T) {
	t.Parallel()
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr); err != nil {
		t.Fatalf("WritePcap: %v", err)
	}
	got, err := ReadPcap(&buf)
	if err != nil {
		t.Fatalf("ReadPcap: %v", err)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("round trip records = %d, want %d", len(got.Records), len(tr.Records))
	}
	if got.Channel != 6 {
		t.Errorf("channel = %d, want 6", got.Channel)
	}
	for i := range tr.Records {
		want, have := tr.Records[i], got.Records[i]
		if have.T != want.T {
			t.Errorf("rec %d: T = %d, want %d", i, have.T, want.T)
		}
		if have.Sender != want.Sender {
			t.Errorf("rec %d: sender = %v, want %v", i, have.Sender, want.Sender)
		}
		if have.Class != want.Class {
			t.Errorf("rec %d: class = %v, want %v", i, have.Class, want.Class)
		}
		if have.Size != want.Size {
			t.Errorf("rec %d: size = %d, want %d", i, have.Size, want.Size)
		}
		if math.Abs(have.RateMbps-want.RateMbps) > 0.26 {
			t.Errorf("rec %d: rate = %v, want %v", i, have.RateMbps, want.RateMbps)
		}
		if have.Retry != want.Retry {
			t.Errorf("rec %d: retry = %v, want %v", i, have.Retry, want.Retry)
		}
		if have.FCSOK != want.FCSOK {
			t.Errorf("rec %d: fcsok = %v, want %v", i, have.FCSOK, want.FCSOK)
		}
		if have.SignalDBm != want.SignalDBm {
			t.Errorf("rec %d: signal = %d, want %d", i, have.SignalDBm, want.SignalDBm)
		}
	}
}

func TestSendersAndAttribution(t *testing.T) {
	t.Parallel()
	tr := sampleTrace()
	senders := tr.Senders()
	// ACK and CTS must not appear as senders.
	if _, ok := senders[dot11.ZeroAddr]; ok {
		t.Error("zero addr counted as sender")
	}
	if got := senders[dot11.LocalAddr(1)]; got != 3 {
		t.Errorf("sta1 frames = %d, want 3 (data, null, rts)", got)
	}
	if got := senders[dot11.LocalAddr(2)]; got != 3 {
		t.Errorf("sta2 frames = %d, want 3", got)
	}
}

func TestDuration(t *testing.T) {
	t.Parallel()
	tr := sampleTrace()
	if got := tr.Duration(); got != 9000*time.Microsecond {
		t.Errorf("Duration = %v, want 9ms", got)
	}
	empty := &Trace{}
	if got := empty.Duration(); got != 0 {
		t.Errorf("empty Duration = %v", got)
	}
}

func TestSlice(t *testing.T) {
	t.Parallel()
	tr := sampleTrace()
	s := tr.Slice(1500, 3000)
	if len(s.Records) != 4 {
		t.Fatalf("slice records = %d, want 4", len(s.Records))
	}
	if s.Records[0].T != 1500 || s.Records[len(s.Records)-1].T != 2700 {
		t.Errorf("slice bounds wrong: first=%d last=%d", s.Records[0].T, s.Records[len(s.Records)-1].T)
	}
	if got := tr.Slice(100000, 200000); len(got.Records) != 0 {
		t.Errorf("out-of-range slice not empty: %d", len(got.Records))
	}
	all := tr.Slice(0, 1<<62)
	if len(all.Records) != len(tr.Records) {
		t.Errorf("full slice = %d records, want %d", len(all.Records), len(tr.Records))
	}
}

func TestReadPcapWrongLinkType(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf, pcap.LinkTypeIEEE80211)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPcap(&buf); !errors.Is(err, ErrLinkType) {
		t.Fatalf("err = %v, want ErrLinkType", err)
	}
}

func TestReadPcapSkipsGarbagePackets(t *testing.T) {
	t.Parallel()
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr); err != nil {
		t.Fatal(err)
	}
	// Append a garbage packet that fails radiotap parsing.
	pw := pcap.NewWriter(&buf, pcap.LinkTypeRadiotap)
	_ = pw // separate writer would re-emit a header; instead splice manually below.

	full := buf.Bytes()
	var spliced bytes.Buffer
	spliced.Write(full)
	// record header: ts=0, incl=4, orig=4 + 4 junk bytes
	rec := []byte{0, 0, 0, 0, 0, 0, 0, 0, 4, 0, 0, 0, 4, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef}
	spliced.Write(rec)

	got, err := ReadPcap(&spliced)
	if err != nil {
		t.Fatalf("ReadPcap: %v", err)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("records = %d, want %d (garbage should be skipped)", len(got.Records), len(tr.Records))
	}
}

func TestEncryptedFlagPropagates(t *testing.T) {
	t.Parallel()
	tr := sampleTrace()
	tr.Encrypted = true
	for i := range tr.Records {
		if tr.Records[i].Class == dot11.ClassData || tr.Records[i].Class == dot11.ClassQoSData {
			tr.Records[i].Protected = true
		}
	}
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Encrypted {
		t.Error("Encrypted flag not rediscovered from protected frames")
	}
}

func TestLargeFrameTruncation(t *testing.T) {
	t.Parallel()
	// A 1528-byte frame must be stored truncated but report full size.
	tr := &Trace{
		Base: time.Unix(0, 0), Channel: 1,
		Records: []Record{{
			T: 10, Sender: dot11.LocalAddr(1), Receiver: dot11.LocalAddr(2),
			Class: dot11.ClassData, Size: 1528, RateMbps: 54, FCSOK: true,
		}},
	}
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 400 {
		t.Errorf("capture bytes = %d, want truncated (<400)", buf.Len())
	}
	got, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Records[0].Size != 1528 {
		t.Errorf("size = %d, want 1528", got.Records[0].Size)
	}
}

func TestSmallControlFrameSizes(t *testing.T) {
	t.Parallel()
	// ACK (14 B) is smaller than a data header; the synthesised frame
	// must still round-trip with the correct class and size.
	tr := &Trace{
		Base: time.Unix(0, 0), Channel: 6,
		Records: []Record{{
			T: 5, Receiver: dot11.LocalAddr(3), Class: dot11.ClassACK,
			Size: 14, RateMbps: 24, FCSOK: true,
		}},
	}
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Records[0].Class != dot11.ClassACK || got.Records[0].Size != 14 {
		t.Errorf("record = %+v", got.Records[0])
	}
	if !got.Records[0].Sender.IsZero() {
		t.Errorf("ACK sender = %v, want zero", got.Records[0].Sender)
	}
}

func TestPrismPcapRoundTrip(t *testing.T) {
	t.Parallel()
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WritePcapLinkType(&buf, tr, pcap.LinkTypePrism); err != nil {
		t.Fatalf("WritePcapLinkType(prism): %v", err)
	}
	got, err := ReadPcap(&buf)
	if err != nil {
		t.Fatalf("ReadPcap: %v", err)
	}
	// The sample trace has one FCS-bad record, dropped on prism export.
	want := 0
	for _, r := range tr.Records {
		if r.FCSOK {
			want++
		}
	}
	if len(got.Records) != want {
		t.Fatalf("prism round trip records = %d, want %d", len(got.Records), want)
	}
	if got.Channel != tr.Channel {
		t.Errorf("channel = %d, want %d", got.Channel, tr.Channel)
	}
	for i, have := range got.Records {
		ref := tr.Records[i] // bad-FCS record is last in the sample
		if have.T != ref.T || have.Sender != ref.Sender || have.Class != ref.Class {
			t.Errorf("rec %d: %+v vs %+v", i, have, ref)
		}
		if math.Abs(have.RateMbps-ref.RateMbps) > 0.11 {
			t.Errorf("rec %d rate = %v, want %v", i, have.RateMbps, ref.RateMbps)
		}
		if have.SignalDBm != ref.SignalDBm {
			t.Errorf("rec %d signal = %d, want %d", i, have.SignalDBm, ref.SignalDBm)
		}
		if !have.FCSOK {
			t.Errorf("rec %d: prism import produced FCS-bad record", i)
		}
	}
}

func TestWritePcapLinkTypeRejectsUnknown(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := WritePcapLinkType(&buf, sampleTrace(), pcap.LinkTypeIEEE80211); !errors.Is(err, ErrLinkType) {
		t.Fatalf("err = %v, want ErrLinkType", err)
	}
}

// TestStreamReaderMatchesReadPcap pins the single-code-path invariant:
// iterating StreamReader.Next yields exactly the records, base time,
// channel and encrypted flag that ReadPcap materialises, for both link
// types.
func TestStreamReaderMatchesReadPcap(t *testing.T) {
	t.Parallel()
	tr := sampleTrace()
	tr.Records[3].Protected = true // exercise the encrypted flag
	for _, linkType := range []uint32{pcap.LinkTypeRadiotap, pcap.LinkTypePrism} {
		var buf bytes.Buffer
		if err := WritePcapLinkType(&buf, tr, linkType); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()

		want, err := ReadPcap(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		sr, err := NewStreamReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		var got []Record
		for {
			rec, err := sr.Next()
			if err != nil {
				break
			}
			got = append(got, rec)
		}
		if len(got) != len(want.Records) {
			t.Fatalf("link %d: streamed %d records, batch %d", linkType, len(got), len(want.Records))
		}
		for i := range got {
			if !got[i].Equal(want.Records[i]) {
				t.Fatalf("link %d record %d:\n stream %+v\n batch  %+v", linkType, i, got[i], want.Records[i])
			}
		}
		if !sr.Base().Equal(want.Base) || sr.Channel() != want.Channel || sr.Encrypted() != want.Encrypted {
			t.Fatalf("link %d metadata: stream (%v, %d, %v) vs batch (%v, %d, %v)",
				linkType, sr.Base(), sr.Channel(), sr.Encrypted(), want.Base, want.Channel, want.Encrypted)
		}
	}
}

// TestStreamReaderWrongLinkType mirrors the batch reader's link-type
// rejection.
func TestStreamReaderWrongLinkType(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	pw := pcap.NewWriter(&buf, pcap.LinkTypeIEEE80211)
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStreamReader(&buf); !errors.Is(err, ErrLinkType) {
		t.Fatalf("error = %v, want ErrLinkType", err)
	}
}
