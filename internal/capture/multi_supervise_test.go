package capture

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dot11fp/internal/dot11"
	"dot11fp/internal/pcap"
)

// scriptSource yields a fixed record slice, then a terminal error
// (io.EOF when Err is nil).
type scriptSource struct {
	recs []Record
	err  error
	i    int
}

func (s *scriptSource) Next() (Record, error) {
	if s.i < len(s.recs) {
		r := s.recs[s.i]
		s.i++
		return r, nil
	}
	if s.err != nil {
		return Record{}, s.err
	}
	return Record{}, io.EOF
}

// stallSource blocks every Next until closed — a FIFO with a wedged
// writer.
type stallSource struct {
	unblock chan struct{}
	closed  atomic.Bool
}

func newStallSource() *stallSource { return &stallSource{unblock: make(chan struct{})} }

func (s *stallSource) Next() (Record, error) {
	<-s.unblock
	return Record{}, io.EOF
}

func (s *stallSource) Close() error {
	if s.closed.CompareAndSwap(false, true) {
		close(s.unblock)
	}
	return nil
}

func seqRecords(epoch int64, n int, sender uint64) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			T: epoch + int64(i)*1000, Sender: dot11.LocalAddr(sender),
			Class: dot11.ClassData, Size: 300, RateMbps: 24, FCSOK: true,
		}
	}
	return recs
}

// TestMultiStreamCloseStalledSource is the regression test for the
// shutdown deadlock: Close while the consumer is blocked in Next on a
// stalled source must unblock both the consumer and the pump (via the
// source's Closer) — no deadlock, no leaked goroutine.
func TestMultiStreamCloseStalledSource(t *testing.T) {
	stalled := newStallSource()
	ms := NewMultiStream(MergeByTime, false,
		stalled,
		&scriptSource{recs: seqRecords(0, 3, 1)},
	)
	// The by-time merge blocks on the stalled head before yielding
	// anything; the consumer goroutine drains whatever Close releases
	// and reports the terminal error.
	got := make(chan error, 1)
	go func() {
		for {
			_, err := ms.Next()
			if err != nil {
				got <- err
				return
			}
		}
	}()
	select {
	case err := <-got:
		t.Fatalf("Next returned %v while a source was stalled", err)
	case <-time.After(20 * time.Millisecond):
	}
	ms.Close()
	select {
	case err := <-got:
		if err != io.EOF {
			t.Fatalf("Next after Close = %v, want io.EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next still blocked after Close: shutdown deadlock")
	}
	if !stalled.closed.Load() {
		t.Fatal("Close did not close the stalled source, leaking its pump goroutine")
	}
}

// TestMultiStreamSourceErrorMidStream pins degraded-mode semantics
// without supervision: a source erroring mid-stream retires, its error
// lands in Err, and the other source's records still all arrive.
func TestMultiStreamSourceErrorMidStream(t *testing.T) {
	t.Parallel()
	boom := errors.New("monitor interface vanished")
	ms := NewMultiStream(MergeByTime, false,
		&scriptSource{recs: seqRecords(0, 5, 1), err: boom},
		&scriptSource{recs: seqRecords(500, 20, 2)},
	)
	defer ms.Close()
	var n, fromHealthy int
	for {
		rec, err := ms.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
		if rec.Sender == dot11.LocalAddr(2) {
			fromHealthy++
		}
	}
	if fromHealthy != 20 {
		t.Fatalf("healthy source delivered %d of 20 records", fromHealthy)
	}
	if n != 25 {
		t.Fatalf("merged %d records, want 25", n)
	}
	if err := ms.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err = %v, want the source failure", err)
	}
}

// TestMultiStreamTruncatedFinalRecord runs a truncated pcap through
// the merge: complete records from both sources arrive, the
// truncation surfaces via Err as pcap.ErrTruncated, and the merge
// still ends in a clean io.EOF.
func TestMultiStreamTruncatedFinalRecord(t *testing.T) {
	t.Parallel()
	tr := &Trace{Base: time.Unix(1700000000, 0).UTC(), Channel: 6}
	tr.Records = seqRecords(0, 20, 1)
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	truncated, err := NewStreamReader(bytes.NewReader(raw[:len(raw)-7]))
	if err != nil {
		t.Fatal(err)
	}
	ms := NewMultiStream(MergeByTime, false,
		truncated,
		&scriptSource{recs: seqRecords(500, 10, 2)},
	)
	defer ms.Close()
	n := 0
	for {
		_, err := ms.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 19+10 {
		t.Fatalf("merged %d records, want 29 (19 complete + 10 healthy)", n)
	}
	if err := ms.Err(); !errors.Is(err, pcap.ErrTruncated) {
		t.Fatalf("Err = %v, want pcap.ErrTruncated", err)
	}
}

// restartSource builds generations of a source that dies after its
// records run out; Reopen hands out the next generation.
type restartSource struct {
	mu   sync.Mutex
	gens [][]Record
	errs []error
	next int
}

func (r *restartSource) reopen(int) (RecordSource, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next >= len(r.gens) {
		return nil, fmt.Errorf("no more generations")
	}
	g := &scriptSource{recs: r.gens[r.next], err: r.errs[r.next]}
	r.next++
	return g, nil
}

// TestMultiStreamSupervisedReopen pins the supervision happy path: a
// source that dies mid-stream is reopened and every record of every
// generation arrives exactly once, with SourceDown/SourceUp events and
// counters telling the story. With Rebase, the reopened generation —
// a fresh epoch — splices onto the stream at the last delivered
// timestamp + 1 µs, staying monotonic across the restart.
func TestMultiStreamSupervisedReopen(t *testing.T) {
	t.Parallel()
	rs := &restartSource{
		// Generation 2 starts at a wildly different epoch, as a restarted
		// capture process would.
		gens: [][]Record{seqRecords(7_000_000_000, 10, 1)},
		errs: []error{nil},
	}
	var mu sync.Mutex
	var events []SourceEvent
	sup := Supervisor{
		Reopen:  rs.reopen,
		Backoff: time.Millisecond,
		Notify: func(ev SourceEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	}
	first := &scriptSource{recs: seqRecords(0, 10, 1), err: errors.New("capture died")}
	ms := NewMultiStreamOpts(MultiOptions{Mode: MergeByTime, Rebase: true, Supervisor: sup}, RecordSource(first))
	defer ms.Close()

	var ts []int64
	for {
		rec, err := ms.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ts = append(ts, rec.T)
	}
	// Generation 2 ends in a clean io.EOF; with ReopenOnEOF unset the
	// source retires normally and the merge ends.
	if len(ts) != 20 {
		t.Fatalf("delivered %d records across the restart, want 20", len(ts))
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("timestamps not monotonic across restart: %d then %d", ts[i-1], ts[i])
		}
	}
	if ts[10] != ts[9]+1 {
		t.Fatalf("reopened generation spliced at %d, want lastT+1 = %d", ts[10], ts[9]+1)
	}

	stats := ms.SourceStats()[0]
	if stats.Records != 20 || stats.Reopens != 1 {
		t.Fatalf("stats = %+v, want 20 records, 1 reopen", stats)
	}
	mu.Lock()
	defer mu.Unlock()
	var downs, ups int
	for _, ev := range events {
		switch ev := ev.(type) {
		case SourceDown:
			downs++
			if ev.Source != 0 {
				t.Fatalf("SourceDown for source %d, want 0", ev.Source)
			}
		case SourceUp:
			ups++
			if ev.Attempts < 1 {
				t.Fatalf("SourceUp with %d attempts", ev.Attempts)
			}
		}
	}
	if downs == 0 || ups != 1 {
		t.Fatalf("saw %d SourceDown and %d SourceUp events, want ≥1 and exactly 1", downs, ups)
	}
}

// TestMultiStreamPermanentDown pins give-up semantics: a source whose
// reopens keep failing is retired with a Permanent SourceDown after
// MaxAttempts, its terminal error lands in Err, and the healthy
// source is never disturbed.
func TestMultiStreamPermanentDown(t *testing.T) {
	t.Parallel()
	boom := errors.New("interface gone for good")
	var permanents atomic.Int32
	sup := Supervisor{
		Reopen:      func(int) (RecordSource, error) { return nil, boom },
		MaxAttempts: 2,
		Backoff:     time.Millisecond,
		Notify: func(ev SourceEvent) {
			if d, ok := ev.(SourceDown); ok && d.Permanent {
				permanents.Add(1)
			}
		},
	}
	ms := NewMultiStreamOpts(MultiOptions{Mode: MergeByTime, Supervisor: sup},
		&scriptSource{recs: seqRecords(0, 3, 1), err: boom},
		&scriptSource{recs: seqRecords(500, 30, 2)},
	)
	defer ms.Close()
	var healthy int
	for {
		rec, err := ms.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Sender == dot11.LocalAddr(2) {
			healthy++
		}
	}
	if healthy != 30 {
		t.Fatalf("healthy source delivered %d of 30 records alongside a permanently down peer", healthy)
	}
	if err := ms.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err = %v, want the terminal failure", err)
	}
	if permanents.Load() != 1 {
		t.Fatalf("saw %d permanent SourceDown events, want 1", permanents.Load())
	}
	stats := ms.SourceStats()
	if !stats[0].Permanent || !stats[0].Down {
		t.Fatalf("source 0 stats = %+v, want Down and Permanent", stats[0])
	}
	if stats[1].Permanent || stats[1].Failures != 0 {
		t.Fatalf("healthy source stats = %+v, want clean", stats[1])
	}
}

// skippySource reports a decode skip on every read — a monitor feeding
// 50% garbage.
type skippySource struct {
	t       int64
	skipped atomic.Uint64
}

func (s *skippySource) Next() (Record, error) {
	s.t += 1000
	s.skipped.Add(1)
	return Record{T: s.t, Sender: dot11.LocalAddr(1), Class: dot11.ClassData,
		Size: 300, RateMbps: 24, FCSOK: true}, nil
}

func (s *skippySource) Skipped() uint64 { return s.skipped.Load() }

// TestMultiStreamBreakerTrips pins the circuit breaker: a source whose
// decode-error rate crosses the threshold is failed with
// ErrBreakerTripped instead of spinning on garbage forever.
func TestMultiStreamBreakerTrips(t *testing.T) {
	t.Parallel()
	sup := Supervisor{BreakerWindow: 10}
	ms := NewMultiStreamOpts(MultiOptions{Mode: MergeByTime, Supervisor: sup},
		&skippySource{})
	defer ms.Close()
	n := 0
	for {
		_, err := ms.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
		if n > 1000 {
			t.Fatal("breaker never tripped")
		}
	}
	if err := ms.Err(); !errors.Is(err, ErrBreakerTripped) {
		t.Fatalf("Err = %v, want ErrBreakerTripped", err)
	}
	stats := ms.SourceStats()[0]
	if stats.DecodeErrors == 0 {
		t.Fatalf("stats = %+v, want decode errors counted", stats)
	}
}
