package capture

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"dot11fp/internal/dot11"
	"dot11fp/internal/pcap"
)

// multiFixture builds a trace of n records from k senders and splits it
// round-robin into parts, each serialised as its own pcap stream.
func multiFixture(t *testing.T, n, senders, parts int) (*Trace, []*StreamReader) {
	t.Helper()
	tr := &Trace{Base: time.Unix(1700000000, 0).UTC(), Channel: 6}
	for i := 0; i < n; i++ {
		tr.Records = append(tr.Records, Record{
			T:      int64(i) * 1000,
			Sender: dot11.LocalAddr(uint64(i%senders + 1)),
			Class:  dot11.ClassData, Size: 300, RateMbps: 24, FCSOK: true,
		})
	}
	split := make([]*Trace, parts)
	for p := range split {
		split[p] = &Trace{Base: tr.Base, Channel: tr.Channel}
	}
	for i := range tr.Records {
		p := i % parts
		split[p].Records = append(split[p].Records, tr.Records[i])
	}
	var readers []*StreamReader
	for _, part := range split {
		var buf bytes.Buffer
		if err := WritePcap(&buf, part); err != nil {
			t.Fatal(err)
		}
		sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		readers = append(readers, sr)
	}
	return tr, readers
}

// TestMultiStreamByTime pins the deterministic merge: records from
// three interleaved pcap parts come back in ascending timestamp order,
// and the merged stream carries exactly the records of the original
// trace.
func TestMultiStreamByTime(t *testing.T) {
	t.Parallel()
	tr, readers := multiFixture(t, 600, 6, 3)
	srcs := make([]RecordSource, len(readers))
	for i, r := range readers {
		srcs[i] = r
	}
	ms := NewMultiStream(MergeByTime, false, srcs...)
	defer ms.Close()
	var got []Record
	for {
		rec, err := ms.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec)
	}
	if err := ms.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr.Records) {
		t.Fatalf("merged %d records, want %d", len(got), len(tr.Records))
	}
	for i := range got {
		if got[i].T != tr.Records[i].T || got[i].Sender != tr.Records[i].Sender {
			t.Fatalf("record %d: T=%d sender=%v, want T=%d sender=%v",
				i, got[i].T, got[i].Sender, tr.Records[i].T, tr.Records[i].Sender)
		}
		if i > 0 && got[i].T < got[i-1].T {
			t.Fatalf("merge out of order at %d: %d after %d", i, got[i].T, got[i-1].T)
		}
	}
}

// TestMultiStreamArrival pins the live-feed mode: every record arrives
// exactly once (order unspecified), and EOF follows the last source.
func TestMultiStreamArrival(t *testing.T) {
	t.Parallel()
	tr, readers := multiFixture(t, 400, 4, 4)
	srcs := make([]RecordSource, len(readers))
	for i, r := range readers {
		srcs[i] = r
	}
	ms := NewMultiStream(MergeArrival, false, srcs...)
	defer ms.Close()
	seen := make(map[int64]int)
	n := 0
	for {
		rec, err := ms.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seen[rec.T]++
		n++
	}
	if n != len(tr.Records) {
		t.Fatalf("arrival merge yielded %d records, want %d", n, len(tr.Records))
	}
	for _, c := range seen {
		if c != 1 {
			t.Fatal("a record arrived more than once")
		}
	}
}

// TestMultiStreamRebase pins the clock alignment: two sources with
// wildly different epochs merge into one zero-based stream.
func TestMultiStreamRebase(t *testing.T) {
	t.Parallel()
	mk := func(epoch int64, n int) *StreamReader {
		tr := &Trace{Base: time.Unix(1700000000, 0).UTC(), Channel: 6}
		for i := 0; i < n; i++ {
			tr.Records = append(tr.Records, Record{
				T: epoch + int64(i)*1000, Sender: dot11.LocalAddr(uint64(epoch%97 + 1)),
				Class: dot11.ClassData, Size: 300, RateMbps: 24, FCSOK: true,
			})
		}
		var buf bytes.Buffer
		if err := WritePcap(&buf, tr); err != nil {
			t.Fatal(err)
		}
		sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return sr
	}
	ms := NewMultiStream(MergeByTime, true, mk(0, 50), mk(9_000_000_000, 50))
	defer ms.Close()
	n, maxT := 0, int64(0)
	for {
		rec, err := ms.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.T > maxT {
			maxT = rec.T
		}
		n++
	}
	if n != 100 {
		t.Fatalf("merged %d records, want 100", n)
	}
	if maxT >= 9_000_000_000 {
		t.Fatalf("rebase left an epoch offset: max T = %d", maxT)
	}
}

// TestMultiStreamClose pins early shutdown: Close releases the decode
// goroutines and Next drains to io.EOF instead of blocking.
func TestMultiStreamClose(t *testing.T) {
	t.Parallel()
	_, readers := multiFixture(t, 10_000, 4, 2)
	srcs := make([]RecordSource, len(readers))
	for i, r := range readers {
		srcs[i] = r
	}
	ms := NewMultiStream(MergeByTime, false, srcs...)
	for i := 0; i < 10; i++ {
		if _, err := ms.Next(); err != nil {
			t.Fatal(err)
		}
	}
	ms.Close()
	for {
		_, err := ms.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	ms.Close() // idempotent
}

// TestStreamReaderTruncatedRecord pins the defined behaviour on a pcap
// whose final record is cut mid-body (a capture interrupted by a crash
// or a still-being-written file): every complete record is yielded,
// then the stream ends with pcap.ErrTruncated — not a silent EOF, and
// not a hang.
func TestStreamReaderTruncatedRecord(t *testing.T) {
	t.Parallel()
	tr := &Trace{Base: time.Unix(1700000000, 0).UTC(), Channel: 6}
	for i := 0; i < 20; i++ {
		tr.Records = append(tr.Records, Record{
			T: int64(i) * 1000, Sender: dot11.LocalAddr(uint64(i + 1)),
			Class: dot11.ClassData, Size: 300, RateMbps: 24, FCSOK: true,
		})
	}
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	sr, err := NewStreamReader(bytes.NewReader(raw[:len(raw)-7])) // cut the last record's body
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := sr.Next()
		if err == nil {
			n++
			continue
		}
		if err == io.EOF {
			t.Fatal("truncated record surfaced as clean EOF")
		}
		if !errors.Is(err, pcap.ErrTruncated) {
			t.Fatalf("truncated record surfaced as %v, want pcap.ErrTruncated", err)
		}
		break
	}
	if n != len(tr.Records)-1 {
		t.Fatalf("%d records decoded before the truncation, want %d", n, len(tr.Records)-1)
	}
	// The batch adapter surfaces the same error.
	if _, err := ReadPcap(bytes.NewReader(raw[:len(raw)-7])); !errors.Is(err, pcap.ErrTruncated) {
		t.Fatalf("ReadPcap on truncated stream: %v, want pcap.ErrTruncated", err)
	}
}
