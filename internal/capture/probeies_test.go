package capture

import (
	"bytes"
	"testing"
	"time"

	"dot11fp/internal/dot11"
)

// probeTrace builds a trace whose probe requests carry distinct IE
// content per station.
func probeTrace() *Trace {
	tr := &Trace{
		Name:    "probes",
		Base:    time.Date(2026, 6, 11, 9, 0, 0, 0, time.UTC),
		Channel: 6,
	}
	for i := 0; i < 4; i++ {
		sta := dot11.LocalAddr(uint64(i + 1))
		extra := dot11.AppendIE(nil, dot11.IEVendor, []byte{0x00, 0x50, 0xf2, byte(i), byte(i * 3)})
		body := dot11.BuildProbeBody([]byte("corpnet"), nil, extra)
		tr.Records = append(tr.Records, Record{
			T: int64(i+1) * 1000, Sender: sta, Receiver: dot11.Broadcast,
			Class: dot11.ClassProbeReq, Size: 70, RateMbps: 1, FCSOK: true,
			ProbeIEs: body,
		})
	}
	return tr
}

func TestProbeIEsPcapRoundTrip(t *testing.T) {
	t.Parallel()
	tr := probeTrace()
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr); err != nil {
		t.Fatalf("WritePcap: %v", err)
	}
	got, err := ReadPcap(&buf)
	if err != nil {
		t.Fatalf("ReadPcap: %v", err)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("got %d records, want %d", len(got.Records), len(tr.Records))
	}
	for i := range tr.Records {
		want, rec := &tr.Records[i], &got.Records[i]
		if !bytes.Equal(rec.ProbeIEs, want.ProbeIEs) {
			t.Errorf("record %d: ProbeIEs = %x, want %x", i, rec.ProbeIEs, want.ProbeIEs)
		}
		if rec.Size != want.Size {
			t.Errorf("record %d: Size = %d, want %d (OrigLen must carry the on-air size)", i, rec.Size, want.Size)
		}
		// The content must still parse to the exact fingerprint: no
		// zero-padding smuggled in as empty SSID elements.
		we := dot11.ParseElems(want.ProbeIEs)
		ge := dot11.ParseElems(rec.ProbeIEs)
		if we.NumIEs != ge.NumIEs || we.ContentKey() != ge.ContentKey() {
			t.Errorf("record %d: content fingerprint changed across round trip", i)
		}
	}
}

// Regression for the recycled-buffer aliasing bug: StreamReader reuses
// one packet buffer across NextInto calls, so a record's ProbeIEs must
// be a copy — reading the next record must not corrupt the previous
// record's content features.
func TestStreamReaderProbeIEsStableAcrossRecycle(t *testing.T) {
	t.Parallel()
	tr := probeTrace()
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr); err != nil {
		t.Fatalf("WritePcap: %v", err)
	}
	sr, err := NewStreamReader(&buf)
	if err != nil {
		t.Fatalf("NewStreamReader: %v", err)
	}
	first, err := sr.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	wantElems := dot11.ParseElems(tr.Records[0].ProbeIEs)
	wantKey := wantElems.ContentKey()
	snapshot := append([]byte(nil), first.ProbeIEs...)
	// Drain the rest of the stream: every read recycles the buffer the
	// first record's body was decoded from.
	for {
		if _, err := sr.Next(); err != nil {
			break
		}
	}
	if !bytes.Equal(first.ProbeIEs, snapshot) {
		t.Fatalf("ProbeIEs mutated by later reads: %x != %x", first.ProbeIEs, snapshot)
	}
	gotElems := dot11.ParseElems(first.ProbeIEs)
	if got := gotElems.ContentKey(); got != wantKey {
		t.Fatalf("content key drifted after buffer recycle: %x != %x", got, wantKey)
	}
}
