package capture_test

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"

	"dot11fp/internal/capture"
)

// TestSourceStatsJSONStable pins SourceStats' JSON shape — the capture
// half of the canonical snapshot surface shared by the HTTP API and
// the /metrics encoder (the engine half lives in
// engine.TestSnapshotJSONStable). Every field carries a distinct
// non-zero value so a dropped tag cannot round-trip silently.
func TestSourceStatsJSONStable(t *testing.T) {
	t.Parallel()
	st := capture.SourceStats{
		Records: 1, DecodeErrors: 2, Failures: 3, Reopens: 4,
		Down: true, Permanent: true,
	}
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var st2 capture.SourceStats
	if err := json.Unmarshal(raw, &st2); err != nil {
		t.Fatal(err)
	}
	if st2 != st {
		t.Fatalf("round trip drifted: got %+v, want %+v", st2, st)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	want := []string{"decode_errors", "down", "failures", "permanent", "records", "reopens"}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("SourceStats JSON keys drifted:\n got  %v\n want %v", keys, want)
	}
}
