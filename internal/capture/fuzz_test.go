package capture

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"dot11fp/internal/pcap"
)

// FuzzStreamReader feeds arbitrary bytes to the full capture input
// stack — pcap framing, then radiotap or Prism metadata, then the
// 802.11 header — which is exactly what a live `tcpdump -w -` pipe can
// deliver after a driver glitch. Every input must stream, skip, or
// error; never panic. The record/skip totals are bounded by the input
// size, since every parsed packet costs at least a 16-byte record
// header.
func FuzzStreamReader(f *testing.F) {
	tr := sampleTrace()
	var rt bytes.Buffer
	if err := WritePcap(&rt, tr); err != nil {
		f.Fatal(err)
	}
	enc := rt.Bytes()
	f.Add(enc)
	var avs bytes.Buffer
	if err := WritePcapLinkType(&avs, tr, pcap.LinkTypePrism); err != nil {
		f.Fatal(err)
	}
	f.Add(avs.Bytes())
	// Truncations at the header, mid stream, and one byte short.
	f.Add(enc[:24])
	f.Add(enc[:len(enc)/2])
	f.Add(enc[:len(enc)-1])
	// A corrupted radiotap/802.11 region mid stream.
	bad := append([]byte(nil), enc...)
	for i := 44; i < 52 && i < len(bad); i++ {
		bad[i] ^= 0xFF
	}
	f.Add(bad)
	// An unsupported link type in an otherwise valid file.
	wrongLink := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint32(wrongLink[20:24], pcap.LinkTypeIEEE80211)
	f.Add(wrongLink)

	f.Fuzz(func(t *testing.T, raw []byte) {
		sr, err := NewStreamReader(bytes.NewReader(raw))
		if err != nil {
			return
		}
		var n uint64
		for {
			rec, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // corrupt tail surfaces as an error, not a panic
			}
			_ = rec
			n++
		}
		if total := n + sr.Skipped(); total > uint64(len(raw))/16+1 {
			t.Fatalf("%d records+skips out of %d input bytes", total, len(raw))
		}
	})
}
