// Package capture models the paper's monitoring device: a standard
// wireless card in monitor mode on a fixed channel, producing one
// timestamped record per received frame.
//
// A Record carries exactly the information the paper extracts from the
// Radiotap/Prism header plus the MAC header fields needed for sender
// attribution (Figure 1): end-of-reception time, rate, on-air size,
// frame class, transmitter address when the frame type carries one, and
// the retry/FCS flags. Traces can be exported to and re-imported from
// standard pcap files with radiotap link type, byte-compatible with
// real-world captures.
package capture

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"dot11fp/internal/dot11"
	"dot11fp/internal/pcap"
	"dot11fp/internal/prism"
	"dot11fp/internal/radiotap"
)

// Record is one observed frame.
type Record struct {
	// T is the end-of-reception timestamp in µs since trace start —
	// the paper's t_i.
	T int64
	// Sender is the transmitter address, or the zero address for frame
	// types that carry none (ACK, CTS): those records still contribute
	// to inter-arrival context but are never attributed to a device.
	Sender dot11.Addr
	// Receiver is the receiver address (RA).
	Receiver dot11.Addr
	// Class is the fingerprinting frame class.
	Class dot11.Class
	// Size is the on-air MPDU size in bytes including header and FCS —
	// the paper's size_i.
	Size int
	// RateMbps is the transmission rate the monitor's PHY reported —
	// the paper's rate_i.
	RateMbps float64
	// Retry reports the retransmission bit.
	Retry bool
	// FCSOK reports whether the frame passed its checksum. Corrupt
	// frames are recorded (real monitors log them) but excluded from
	// signatures.
	FCSOK bool
	// SignalDBm is the received signal strength.
	SignalDBm int8
	// Protected reports the frame-body encryption bit.
	Protected bool
	// ProbeIEs is the raw information-element list of a probe request
	// body — the address-independent content the probe-content
	// parameters and the MAC-randomization clusterer fingerprint. It is
	// nil for every other class and for probe requests captured without
	// a body. Producers must store a stable slice (never one aliasing a
	// recycled decode buffer): records outlive the next read.
	ProbeIEs []byte
}

// Equal reports whether two records carry identical observations,
// comparing probe content by value. (Record itself is not
// ==-comparable: ProbeIEs is a slice.)
func (r Record) Equal(o Record) bool {
	return r.T == o.T && r.Sender == o.Sender && r.Receiver == o.Receiver &&
		r.Class == o.Class && r.Size == o.Size && r.RateMbps == o.RateMbps &&
		r.Retry == o.Retry && r.FCSOK == o.FCSOK && r.SignalDBm == o.SignalDBm &&
		r.Protected == o.Protected && bytes.Equal(r.ProbeIEs, o.ProbeIEs)
}

// Trace is an ordered sequence of records from one monitoring session.
type Trace struct {
	// Name labels the trace (e.g. "office 1").
	Name string
	// Base is the wall-clock time of T=0.
	Base time.Time
	// Channel is the monitored 2.4 GHz channel number.
	Channel int
	// Encrypted notes whether the network was WPA-protected.
	Encrypted bool
	// Records are ordered by strictly non-decreasing T.
	Records []Record
}

// Duration returns the time span covered by the trace.
func (tr *Trace) Duration() time.Duration {
	if len(tr.Records) == 0 {
		return 0
	}
	return time.Duration(tr.Records[len(tr.Records)-1].T) * time.Microsecond
}

// Senders returns the set of distinct non-zero senders in the trace.
func (tr *Trace) Senders() map[dot11.Addr]int {
	out := make(map[dot11.Addr]int)
	for i := range tr.Records {
		if s := tr.Records[i].Sender; !s.IsZero() {
			out[s]++
		}
	}
	return out
}

// Slice returns the sub-trace with T in [from, to) µs. The returned
// trace shares the underlying record storage.
func (tr *Trace) Slice(from, to int64) *Trace {
	lo, hi := 0, len(tr.Records)
	for lo < hi && tr.Records[lo].T < from {
		lo++
	}
	j := lo
	for j < hi && tr.Records[j].T < to {
		j++
	}
	return &Trace{
		Name: tr.Name, Base: tr.Base, Channel: tr.Channel,
		Encrypted: tr.Encrypted, Records: tr.Records[lo:j],
	}
}

// snapBody caps the payload bytes written per packet; headers and sizes
// are preserved via OrigLen, mirroring truncating monitors.
const snapBody = 64

// ErrLinkType reports an unsupported pcap link type on import.
var ErrLinkType = errors.New("capture: unsupported pcap link type")

// WritePcap serialises the trace as a standard radiotap pcap stream.
// Frame bodies are zero-filled and truncated (size information is kept
// in the record length fields), exactly like a snaplen-limited capture —
// except probe-request content (Record.ProbeIEs), which is written
// verbatim so content fingerprints survive the round trip.
func WritePcap(w io.Writer, tr *Trace) error {
	return WritePcapLinkType(w, tr, pcap.LinkTypeRadiotap)
}

// WritePcapLinkType serialises the trace with the chosen capture-header
// format: pcap.LinkTypeRadiotap or pcap.LinkTypePrism (the AVS header) —
// the two formats the paper's method reads.
func WritePcapLinkType(w io.Writer, tr *Trace, linkType uint32) error {
	if linkType != pcap.LinkTypeRadiotap && linkType != pcap.LinkTypePrism {
		return fmt.Errorf("%w: %d", ErrLinkType, linkType)
	}
	pw := pcap.NewWriter(w, linkType)
	for i := range tr.Records {
		rec := &tr.Records[i]
		var meta []byte
		if linkType == pcap.LinkTypeRadiotap {
			meta = radiotapFor(tr, rec)
		} else {
			if !rec.FCSOK {
				// The AVS header carries no FCS-validity flag; drivers in
				// this mode discard corrupt frames, and so do we.
				continue
			}
			meta = prismFor(tr, rec)
		}
		frame := frameFor(rec)
		raw := frame.Encode()
		if len(raw) > snapBody+34 { // keep headers + a little body
			raw = raw[:snapBody+34]
		}
		data := append(meta, raw...)
		p := pcap.Packet{
			Time:    tr.Base.Add(time.Duration(rec.T) * time.Microsecond),
			Data:    data,
			OrigLen: len(data) - len(raw) + rec.Size,
		}
		if err := pw.WritePacket(p); err != nil {
			return fmt.Errorf("capture: packet %d: %w", i, err)
		}
	}
	return pw.Flush()
}

// radiotapFor builds the radiotap metadata bytes for a record.
func radiotapFor(tr *Trace, rec *Record) []byte {
	rt := radiotap.Header{
		TSFT: uint64(rec.T), HasTSFT: true,
		HasFlags:     true,
		ChannelFreq:  radiotap.Freq2GHz(tr.Channel),
		ChannelFlags: radiotap.Chan2GHz | chanModeFlag(rec.RateMbps),
		HasChannel:   true,
		AntSignal:    rec.SignalDBm,
		HasAntSignal: true,
	}
	rt.SetRateMbps(rec.RateMbps)
	rt.Flags = radiotap.FlagFCS
	if !rec.FCSOK {
		rt.Flags |= radiotap.FlagBadFCS
	}
	return rt.Encode()
}

// prismFor builds the AVS metadata bytes for a record. The AVS header
// carries no FCS-validity flag, so corrupt frames keep their (broken)
// trailing checksum and are detected on import.
func prismFor(tr *Trace, rec *Record) []byte {
	ph := prism.Header{
		MACTime:   uint64(rec.T),
		Channel:   uint32(tr.Channel),
		SSIType:   prism.SSITypeDBm,
		SSISignal: int32(rec.SignalDBm),
		PhyType:   prism.PhyTypeOFDM,
	}
	if isCCKRate(rec.RateMbps) {
		ph.PhyType = prism.PhyTypeDSSS
	}
	ph.SetRateMbps(rec.RateMbps)
	return ph.Encode()
}

// isCCKRate mirrors chanModeFlag's rate classification.
func isCCKRate(rate float64) bool {
	switch rate {
	case 1, 2, 5.5, 11:
		return true
	default:
		return false
	}
}

// chanModeFlag picks the radiotap channel-mode flag for a rate.
func chanModeFlag(rate float64) uint16 {
	switch rate {
	case 1, 2, 5.5, 11:
		return radiotap.ChanCCK
	default:
		return radiotap.ChanOFDM
	}
}

// frameFor synthesises a plausible 802.11 frame for a record. The body
// length is chosen so the encoded MPDU matches rec.Size (floored at the
// header size when rec.Size is smaller).
func frameFor(rec *Record) dot11.Frame {
	var f dot11.Frame
	f.FC.Type, f.FC.Subtype = classWire(rec.Class)
	f.FC.Retry = rec.Retry
	f.FC.Protected = rec.Protected && f.FC.Type == dot11.TypeData
	f.Addr1 = rec.Receiver
	if f.HasTA() {
		f.Addr2 = rec.Sender
		f.Addr3 = rec.Receiver
	}
	if f.FC.Type == dot11.TypeData {
		f.FC.ToDS = true
	}
	if rec.Class == dot11.ClassProbeReq && len(rec.ProbeIEs) > 0 {
		// Probe-request content round-trips verbatim and is never
		// zero-padded: padding would parse as a run of empty SSID
		// elements and corrupt the content fingerprint. The on-air size
		// is preserved via OrigLen regardless of the body length.
		f.Body = rec.ProbeIEs
		return f
	}
	if pad := rec.Size - f.Size(); pad > 0 {
		f.Body = make([]byte, pad)
	}
	return f
}

// classWire maps a fingerprint class back to a representative
// type/subtype pair for serialisation.
func classWire(c dot11.Class) (dot11.Type, dot11.Subtype) {
	switch c {
	case dot11.ClassData:
		return dot11.TypeData, dot11.SubtypeData
	case dot11.ClassQoSData:
		return dot11.TypeData, dot11.SubtypeQoSData
	case dot11.ClassNull:
		return dot11.TypeData, dot11.SubtypeNull
	case dot11.ClassBeacon:
		return dot11.TypeManagement, dot11.SubtypeBeacon
	case dot11.ClassProbeReq:
		return dot11.TypeManagement, dot11.SubtypeProbeReq
	case dot11.ClassProbeResp:
		return dot11.TypeManagement, dot11.SubtypeProbeResp
	case dot11.ClassMgmtOther:
		return dot11.TypeManagement, dot11.SubtypeAuth
	case dot11.ClassRTS:
		return dot11.TypeControl, dot11.SubtypeRTS
	case dot11.ClassCTS:
		return dot11.TypeControl, dot11.SubtypeCTS
	case dot11.ClassACK:
		return dot11.TypeControl, dot11.SubtypeACK
	case dot11.ClassPSPoll:
		return dot11.TypeControl, dot11.SubtypePSPoll
	default:
		return dot11.TypeControl, dot11.SubtypeCFEnd
	}
}

// ReadPcap parses a radiotap or AVS/Prism pcap stream back into a
// Trace. Frames whose capture or 802.11 headers do not parse are
// skipped (standard monitor behaviour is to tolerate noise), but a
// stream-level error aborts.
//
// It is a batch adapter over StreamReader — the single decoding code
// path — and materialises every record; streaming consumers (the
// engine) should iterate StreamReader.Next instead.
func ReadPcap(r io.Reader) (*Trace, error) {
	sr, err := NewStreamReader(r)
	if err != nil {
		return nil, err
	}
	tr := &Trace{}
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		tr.Records = append(tr.Records, rec)
	}
	tr.Base = sr.Base()
	tr.Channel = sr.Channel()
	tr.Encrypted = sr.Encrypted()
	return tr, nil
}

// StreamReader yields the records of a radiotap or AVS/Prism pcap
// stream one at a time, without materialising the trace — O(1) memory
// for arbitrarily long captures, the input path of the streaming
// engine. The packet buffer is recycled across records, so the steady
// state allocates nothing per frame beyond what the pcap payload
// forces.
//
// Records stream in capture order; frames whose capture or 802.11
// headers do not parse are skipped, exactly like ReadPcap (which is a
// batch adapter over this type).
type StreamReader struct {
	pr        *pcap.Reader
	isPrism   bool
	buf       []byte
	first     bool
	base      time.Time
	channel   int
	encrypted bool
	skipped   atomic.Uint64
}

// NewStreamReader parses the pcap file header and returns a reader
// positioned at the first record. Only the two monitor-metadata link
// types the paper's method reads are accepted.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return nil, err
	}
	switch pr.LinkType() {
	case pcap.LinkTypeRadiotap, pcap.LinkTypePrism:
	default:
		return nil, fmt.Errorf("%w: %d", ErrLinkType, pr.LinkType())
	}
	return &StreamReader{
		pr:      pr,
		isPrism: pr.LinkType() == pcap.LinkTypePrism,
		first:   true,
	}, nil
}

// Next returns the next decodable record, or io.EOF at clean end of
// stream. The record is self-contained (no aliasing of reader state).
func (s *StreamReader) Next() (Record, error) {
	for {
		p, err := s.pr.NextInto(s.buf)
		if err != nil {
			if err == io.EOF {
				return Record{}, io.EOF
			}
			return Record{}, err
		}
		s.buf = p.Data[:cap(p.Data)] // recycle the packet buffer
		var meta captureMeta
		var n int
		if s.isPrism {
			ph, hn, err := prism.Decode(p.Data)
			if err != nil {
				s.skipped.Add(1)
				continue
			}
			n = hn
			meta = captureMeta{
				hasTime: true, timeUs: ph.MACTime,
				rate:    ph.RateMbps(),
				channel: int(ph.Channel),
				fcsOK:   true, // corrupt frames never reach an AVS capture
				hasSig:  ph.SSIType == prism.SSITypeDBm, sig: int8(ph.SSISignal),
			}
		} else {
			rt, hn, err := radiotap.Decode(p.Data)
			if err != nil {
				s.skipped.Add(1)
				continue
			}
			n = hn
			meta = captureMeta{
				hasTime: rt.HasTSFT, timeUs: rt.TSFT,
				rate:    rt.RateMbps(),
				channel: channelOf(rt.ChannelFreq),
				fcsOK:   !rt.HasFlags || rt.Flags&radiotap.FlagBadFCS == 0,
				hasSig:  rt.HasAntSignal, sig: rt.AntSignal,
			}
		}
		frame, err := dot11.Decode(p.Data[n:], false)
		if err != nil {
			s.skipped.Add(1)
			continue
		}
		if s.first {
			s.base = p.Time
			if meta.hasTime {
				s.base = p.Time.Add(-time.Duration(meta.timeUs) * time.Microsecond)
			}
			s.channel = meta.channel
			s.first = false
		}
		var t int64
		if meta.hasTime {
			t = int64(meta.timeUs)
		} else {
			t = p.Time.Sub(s.base).Microseconds()
		}
		rec := Record{
			T:         t,
			Sender:    frame.TA(),
			Receiver:  frame.RA(),
			Class:     dot11.Classify(frame.FC),
			Size:      p.OrigLen - n,
			RateMbps:  meta.rate,
			Retry:     frame.FC.Retry,
			FCSOK:     meta.fcsOK,
			Protected: frame.FC.Protected,
		}
		if meta.hasSig {
			rec.SignalDBm = meta.sig
		}
		// Copy-on-retain: frame.Body aliases the recycled packet buffer,
		// and the record outlives the next NextInto call. Probe-request
		// content is the one body downstream keeps, so it is the one
		// body that must be copied out of the buffer here.
		if rec.Class == dot11.ClassProbeReq && len(frame.Body) > 0 {
			rec.ProbeIEs = append([]byte(nil), frame.Body...)
		}
		if rec.Protected {
			s.encrypted = true
		}
		return rec, nil
	}
}

// Base returns the wall-clock time of T=0, known once the first record
// has been decoded.
func (s *StreamReader) Base() time.Time { return s.base }

// Channel returns the monitored channel, known once the first record
// has been decoded (0 if the capture metadata carries none).
func (s *StreamReader) Channel() int { return s.channel }

// Encrypted reports whether any record decoded so far had the
// protected bit set.
func (s *StreamReader) Encrypted() bool { return s.encrypted }

// Skipped reports how many records were consumed as decode failures
// (capture metadata or 802.11 header that did not parse) — the
// skip-and-count counter MultiStream's per-source circuit breaker and
// stats read. Safe from any goroutine.
func (s *StreamReader) Skipped() uint64 { return s.skipped.Load() }

// captureMeta is the link-type-independent view of capture metadata.
type captureMeta struct {
	hasTime bool
	timeUs  uint64
	rate    float64
	channel int
	fcsOK   bool
	hasSig  bool
	sig     int8
}

// channelOf inverts Freq2GHz for the 2.4 GHz band; unknown frequencies
// return 0.
func channelOf(freq uint16) int {
	if freq == 2484 {
		return 14
	}
	if freq >= 2412 && freq <= 2472 && (freq-2407)%5 == 0 {
		return int(freq-2407) / 5
	}
	return 0
}
