// Package figures regenerates the paper's histogram figures (2 and
// 4–8) from controlled simulator experiments. Each builder returns one
// or more labelled signature series that cmd/histdump renders as TSV
// and the benchmark harness checks for the paper's qualitative shape
// (number of comb peaks, peak positions, distribution spread).
package figures

import (
	"fmt"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/core"
	"dot11fp/internal/device"
	"dot11fp/internal/dot11"
	"dot11fp/internal/scenario"
)

// Series is one labelled histogram line of a figure.
type Series struct {
	Title string
	Sig   *core.Signature
}

// iatCfg is the inter-arrival configuration used by all figures, with
// the minimum-observation rule disabled (figures show whatever the
// controlled run produced).
func iatCfg() core.Config {
	return core.Config{Param: core.ParamInterArrival, MinObservations: 1}
}

// dataFirstTry54 is the paper's Figure-4 filter.
func dataFirstTry54(rec *capture.Record) bool {
	return (rec.Class == dot11.ClassData || rec.Class == dot11.ClassQoSData) &&
		!rec.Retry && rec.RateMbps == 54
}

// dataOnly keeps any data frame.
func dataOnly(rec *capture.Record) bool {
	return rec.Class == dot11.ClassData || rec.Class == dot11.ClassQoSData
}

// Figure2 reproduces the example inter-arrival histogram: one busy
// office device observed for a few minutes.
func Figure2(seed uint64) (Series, error) {
	tr, _, infos, err := scenario.BuildDetailed(scenario.Office("fig2", seed, 6*time.Minute, 8))
	if err != nil {
		return Series{}, err
	}
	// Pick the busiest client.
	senders := tr.Senders()
	var best dot11.Addr
	for _, si := range infos {
		if senders[si.Addr] > senders[best] {
			best = si.Addr
		}
	}
	sig := core.ExtractOne(tr, best, iatCfg())
	return Series{Title: fmt.Sprintf("fig2: inter-arrival histogram of %v", best), Sig: sig}, nil
}

// Figure4 reproduces the backoff-implementation comparison: two cards,
// Faraday cage, saturated UDP, only first-try 54 Mb/s data frames.
// The first card uses the standard 16-slot grid; the second adds its
// quirk pre-slot.
func Figure4(seed uint64) ([2]Series, error) {
	var out [2]Series
	profiles := [2]string{"atheros-like-a", "atheros-like-b"}
	for i, name := range profiles {
		prof, err := device.ByName(name)
		if err != nil {
			return out, err
		}
		tr, addr, err := scenario.BuildFaraday(scenario.FaradayParams{
			Profile: prof, Seed: seed + uint64(i), Duration: 20 * time.Second, FixedRateMbps: 54,
		})
		if err != nil {
			return out, err
		}
		sig := core.ExtractOneFiltered(tr, addr, iatCfg(), dataFirstTry54)
		out[i] = Series{Title: fmt.Sprintf("fig4%c: %s backoff comb (first-try 54 Mb/s data)", 'a'+i, name), Sig: sig}
	}
	return out, nil
}

// Figure5 reproduces the RTS experiment: the same device in a busy lab
// channel, with virtual carrier sensing off versus an RTS threshold of
// 2000 bytes (1470-byte UDP payloads frame to ~1500 B + MAC overhead,
// above the threshold either way once WPA is off).
func Figure5(seed uint64) ([2]Series, error) {
	var out [2]Series
	prof, err := device.ByName("atheros-like-a")
	if err != nil {
		return out, err
	}
	for i, thresh := range [2]int{device.RTSDisabled, 1400} {
		thresh := thresh
		tr, addr, err := scenario.BuildFaraday(scenario.FaradayParams{
			Profile: prof, Seed: seed, Duration: 20 * time.Second,
			FixedRateMbps: 54, BusyChannel: true,
			Mutate: func(p *device.Profile) { p.RTSThresholdB = thresh },
		})
		if err != nil {
			return out, err
		}
		sig := core.ExtractOneFiltered(tr, addr, iatCfg(), dataOnly)
		label := "RTS mechanism deactivated"
		if i == 1 {
			label = "RTS mechanism activated"
		}
		out[i] = Series{Title: fmt.Sprintf("fig5%c: %s", 'a'+i, label), Sig: sig}
	}
	return out, nil
}

// Figure6 reproduces the rate-adaptation comparison: two devices with
// different rate policies in the cage, all rates included; returns the
// inter-arrival signatures and the rate-distribution signatures.
func Figure6(seed uint64) (iat [2]Series, rates [2]Series, err error) {
	profiles := [2]string{"broadcom-like", "atheros-like-a"} // plain ARF vs sampler
	for i, name := range profiles {
		prof, perr := device.ByName(name)
		if perr != nil {
			return iat, rates, perr
		}
		tr, addr, berr := scenario.BuildFaraday(scenario.FaradayParams{
			Profile: prof, Seed: seed + uint64(i), Duration: 20 * time.Second,
			SNRdB: 24, // mid-range: adaptation has room to move both ways
		})
		if berr != nil {
			return iat, rates, berr
		}
		iat[i] = Series{
			Title: fmt.Sprintf("fig6%c: device %d inter-arrival signature (%s)", 'a'+i, i+1, name),
			Sig:   core.ExtractOneFiltered(tr, addr, iatCfg(), dataOnly),
		}
		rates[i] = Series{
			Title: fmt.Sprintf("fig6%c: device %d transmission rate distribution (%s)", 'c'+i, i+1, name),
			Sig: core.ExtractOneFiltered(tr, addr,
				core.Config{Param: core.ParamRate, MinObservations: 1}, dataOnly),
		}
	}
	return iat, rates, nil
}

// Figure7 reproduces the twin-netbook experiment: two units of the same
// model and OS, different service sets, histogram over broadcast data
// frames only.
func Figure7(seed uint64) ([2]Series, error) {
	var out [2]Series
	prof, err := device.ByName("intel-like-a")
	if err != nil {
		return out, err
	}
	tr, addrs, err := scenario.BuildTwins(scenario.TwinParams{
		Profile: prof, Seed: seed, Duration: 8 * time.Minute,
		ServicesA: []string{"igmpv3", "llmnr"},
		ServicesB: []string{"mdns", "ssdp", "nbns"},
	})
	if err != nil {
		return out, err
	}
	broadcastData := func(rec *capture.Record) bool {
		return rec.Class == dot11.ClassData && rec.Receiver.IsBroadcast()
	}
	for i, addr := range addrs {
		sig := core.ExtractOneFiltered(tr, addr, iatCfg(), broadcastData)
		out[i] = Series{Title: fmt.Sprintf("fig7%c: netbook instance %d (broadcast data only)", 'a'+i, i+1), Sig: sig}
	}
	return out, nil
}

// Figure8 reproduces the power-save comparison: two different cards in
// the same (busy) environment, histogram over "data null function"
// frames only. The null frames' inter-arrival times expose the card's
// access timing — slot bias, timer granularity, preamble mode — and the
// keepalive cadence in the log tail.
func Figure8(seed uint64) ([2]Series, error) {
	var out [2]Series
	profiles := [2]string{"intel-like-b", "realtek-like"}
	for i, name := range profiles {
		prof, err := device.ByName(name)
		if err != nil {
			return out, err
		}
		prof.PowerSave = true
		prof.NullPeriodUs = []int64{400_000, 240_000}[i] // keepalive cadences
		prof.NullJitterUs = []float64{15_000, 40_000}[i]
		tr, addr, err := scenario.BuildFaraday(scenario.FaradayParams{
			Profile: prof, Seed: seed + uint64(i), Duration: 4 * time.Minute,
			Idle: true, KeepPowerSave: true, BusyChannel: true,
		})
		if err != nil {
			return out, err
		}
		nullOnly := func(rec *capture.Record) bool { return rec.Class == dot11.ClassNull }
		sig := core.ExtractOneFiltered(tr, addr, iatCfg(), nullOnly)
		out[i] = Series{Title: fmt.Sprintf("fig8%c: %s (null-function frames only)", 'a'+i, name), Sig: sig}
	}
	return out, nil
}
