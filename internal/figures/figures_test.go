package figures

import (
	"testing"

	"dot11fp/internal/core"
	"dot11fp/internal/dot11"
	"dot11fp/internal/histogram"
)

// combPeaks counts populated linear-region bins holding at least frac of
// the class's mass, a proxy for the number of visible comb peaks.
func combPeaks(h *histogram.Histogram, frac float64) int {
	total := float64(h.Total())
	if total == 0 {
		return 0
	}
	peaks := 0
	for i := 0; i < 250; i++ { // linear region only
		if float64(h.Count(i))/total >= frac {
			peaks++
		}
	}
	return peaks
}

// dataHist fetches the dominant data-class histogram of a signature.
func dataHist(t *testing.T, sig *core.Signature) *histogram.Histogram {
	t.Helper()
	if h := sig.Hist(dot11.ClassQoSData); h != nil && h.Total() > 0 {
		return h
	}
	if h := sig.Hist(dot11.ClassData); h != nil && h.Total() > 0 {
		return h
	}
	t.Fatal("no data histogram in signature")
	return nil
}

func TestFigure2(t *testing.T) {
	t.Parallel()
	s, err := Figure2(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Sig.Observations() < 200 {
		t.Fatalf("figure 2 observations = %d, want a busy device", s.Sig.Observations())
	}
}

func TestFigure4BackoffComb(t *testing.T) {
	t.Parallel()
	ss, err := Figure4(2)
	if err != nil {
		t.Fatal(err)
	}
	hStd := dataHist(t, ss[0].Sig)
	hQuirk := dataHist(t, ss[1].Sig)
	if hStd.Total() < 1_000 || hQuirk.Total() < 1_000 {
		t.Fatalf("too few observations: %d / %d", hStd.Total(), hQuirk.Total())
	}
	// The standard card shows ≈16 slot peaks; the quirky card adds its
	// pre-slot, so it must show at least one more populated position.
	pStd := combPeaks(hStd, 0.01)
	pQuirk := combPeaks(hQuirk, 0.01)
	if pStd < 10 || pStd > 22 {
		t.Errorf("standard card comb peaks = %d, want ≈16", pStd)
	}
	if pQuirk <= pStd-2 {
		t.Errorf("quirky card peaks (%d) should not collapse below standard (%d)", pQuirk, pStd)
	}
	// The two combs must be distinguishable distributions.
	if sim := histogram.Cosine(hStd.Freqs(), hQuirk.Freqs()); sim > 0.995 {
		t.Errorf("backoff combs indistinguishable: cosine %v", sim)
	}
}

func TestFigure5RTS(t *testing.T) {
	t.Parallel()
	ss, err := Figure5(3)
	if err != nil {
		t.Fatal(err)
	}
	hOff := dataHist(t, ss[0].Sig)
	hOn := dataHist(t, ss[1].Sig)
	// With RTS on, data frames follow CTS after SIFS: their inter-arrival
	// becomes rigid, concentrating mass tightly; the RTS-off histogram
	// spreads over the backoff comb. Compare mass concentration.
	top := func(h *histogram.Histogram) float64 {
		freqs := h.Freqs()
		best := 0.0
		for _, f := range freqs {
			if f > best {
				best = f
			}
		}
		return best
	}
	if top(hOn) <= top(hOff) {
		t.Errorf("RTS-on concentration %.3f should exceed RTS-off %.3f", top(hOn), top(hOff))
	}
	if sim := histogram.Cosine(hOff.Freqs(), hOn.Freqs()); sim > 0.9 {
		t.Errorf("RTS settings indistinguishable: cosine %v", sim)
	}
}

func TestFigure6RateAdaptation(t *testing.T) {
	t.Parallel()
	iat, rates, err := Figure6(4)
	if err != nil {
		t.Fatal(err)
	}
	// The two devices' rate distributions must differ (ARF vs sampler):
	// the sampler spreads over more rate bins.
	distinctRates := func(s core.Signature) int {
		n := 0
		for _, class := range s.Classes() {
			h := s.Hist(class)
			for i := 0; i < h.Bins(); i++ {
				if float64(h.Count(i)) > 0.005*float64(h.Total()) {
					n++
				}
			}
		}
		return n
	}
	n1 := distinctRates(*rates[0].Sig)
	n2 := distinctRates(*rates[1].Sig)
	if n2 <= n1 {
		t.Errorf("sampler device uses %d rate bins, ARF device %d; sampler should spread wider", n2, n1)
	}
	// Different rate behaviour must yield different iat histograms.
	h1, h2 := dataHist(t, iat[0].Sig), dataHist(t, iat[1].Sig)
	if sim := histogram.Cosine(h1.Freqs(), h2.Freqs()); sim > 0.98 {
		t.Errorf("figure-6 iat histograms indistinguishable: cosine %v", sim)
	}
}

func TestFigure7Twins(t *testing.T) {
	t.Parallel()
	ss, err := Figure7(5)
	if err != nil {
		t.Fatal(err)
	}
	h1 := ss[0].Sig.Hist(dot11.ClassData)
	h2 := ss[1].Sig.Hist(dot11.ClassData)
	if h1 == nil || h2 == nil || h1.Total() < 20 || h2.Total() < 20 {
		t.Fatalf("twin broadcast observations too sparse: %v / %v", h1, h2)
	}
	// Same model, same OS — but different services must produce visibly
	// different broadcast inter-arrival histograms (distinct peaks).
	if sim := histogram.Cosine(h1.Freqs(), h2.Freqs()); sim > 0.85 {
		t.Errorf("twins indistinguishable by services: cosine %v", sim)
	}
}

func TestFigure8PowerSave(t *testing.T) {
	t.Parallel()
	ss, err := Figure8(6)
	if err != nil {
		t.Fatal(err)
	}
	h1 := ss[0].Sig.Hist(dot11.ClassNull)
	h2 := ss[1].Sig.Hist(dot11.ClassNull)
	if h1 == nil || h2 == nil {
		t.Fatal("missing null-function histograms")
	}
	if h1.Total() < 100 || h2.Total() < 100 {
		t.Fatalf("null observations: %d / %d, want ≥100", h1.Total(), h2.Total())
	}
	// The two cards' null-frame frequency distributions must visibly
	// differ (keepalive cadence + access timing), as in the paper.
	if sim := histogram.Cosine(h1.Freqs(), h2.Freqs()); sim > 0.7 {
		t.Errorf("power-save histograms indistinguishable: cosine %v", sim)
	}
}
