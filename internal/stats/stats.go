// Package stats provides the deterministic random sampling and the small
// numerical routines (trapezoid area, descriptive statistics) that the
// simulator and the evaluation harness share.
//
// All stochastic components of this project draw from explicitly injected
// sources so that every trace, table and figure is reproducible from a
// single scenario seed.
package stats

import (
	"math"
	"math/rand/v2"
	"sort"
)

// NewRand returns a deterministic PCG-backed generator for a (seed,
// stream) pair. Distinct streams derived from the same seed are
// independent, so adding a station to a scenario never perturbs the
// random sequence of any other station.
func NewRand(seed, stream uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, splitmix(seed^stream)))
}

// splitmix is the SplitMix64 finaliser, used to decorrelate stream ids.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Exponential samples an exponential variate with the given mean.
func Exponential(r *rand.Rand, mean float64) float64 {
	return r.ExpFloat64() * mean
}

// Pareto samples a bounded Pareto variate with shape alpha and scale
// xmin, truncated at xmax. Heavy-tailed on/off times (web traffic) use
// this.
func Pareto(r *rand.Rand, alpha, xmin, xmax float64) float64 {
	u := r.Float64()
	// Inverse CDF of the bounded Pareto distribution.
	ha := math.Pow(xmax, -alpha)
	la := math.Pow(xmin, -alpha)
	x := math.Pow(u*(ha-la)+la, -1/alpha)
	return x
}

// Normal samples a normal variate.
func Normal(r *rand.Rand, mean, stddev float64) float64 {
	return r.NormFloat64()*stddev + mean
}

// TruncNormal samples a normal variate clamped to [lo, hi].
func TruncNormal(r *rand.Rand, mean, stddev, lo, hi float64) float64 {
	v := Normal(r, mean, stddev)
	return math.Max(lo, math.Min(hi, v))
}

// TrapezoidArea integrates y over x by the trapezoid rule. Points are
// sorted by x first; duplicate x values contribute nothing. This is the
// AUC computation for the paper's similarity curves (Table II).
func TrapezoidArea(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, len(xs))
	for i := range xs {
		pts[i] = pt{xs[i], ys[i]}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].x != pts[j].x {
			return pts[i].x < pts[j].x
		}
		return pts[i].y < pts[j].y
	})
	var area float64
	for i := 1; i < len(pts); i++ {
		dx := pts[i].x - pts[i-1].x
		area += dx * (pts[i].y + pts[i-1].y) / 2
	}
	return area
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N             int
	Mean, Stddev  float64
	Min, Max      float64
	P50, P90, P99 float64
}

// Summarize computes descriptive statistics. An empty sample yields the
// zero Summary.
func Summarize(sample []float64) Summary {
	var s Summary
	s.N = len(sample)
	if s.N == 0 {
		return s
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	var sum, sum2 float64
	for _, v := range sorted {
		sum += v
		sum2 += v * v
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		v := (sum2 - sum*sum/float64(s.N)) / float64(s.N-1)
		if v > 0 {
			s.Stddev = math.Sqrt(v)
		}
	}
	s.P50 = quantileSorted(sorted, 0.50)
	s.P90 = quantileSorted(sorted, 0.90)
	s.P99 = quantileSorted(sorted, 0.99)
	return s
}

// quantileSorted returns the q-quantile of an ascending sample using
// linear interpolation.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
