package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRandDeterministic(t *testing.T) {
	t.Parallel()
	a := NewRand(42, 7)
	b := NewRand(42, 7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same (seed,stream) diverged at draw %d", i)
		}
	}
}

func TestNewRandStreamsIndependent(t *testing.T) {
	t.Parallel()
	a := NewRand(42, 1)
	b := NewRand(42, 2)
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams 1 and 2 collided on %d/%d draws", same, n)
	}
}

func TestExponentialMean(t *testing.T) {
	t.Parallel()
	r := NewRand(1, 1)
	const mean = 250.0
	var sum float64
	const n = 200_000
	for i := 0; i < n; i++ {
		v := Exponential(r, mean)
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("sample mean = %v, want ~%v", got, mean)
	}
}

func TestParetoBounds(t *testing.T) {
	t.Parallel()
	r := NewRand(2, 3)
	const alpha, xmin, xmax = 1.2, 10.0, 10_000.0
	for i := 0; i < 50_000; i++ {
		v := Pareto(r, alpha, xmin, xmax)
		if v < xmin || v > xmax {
			t.Fatalf("Pareto sample %v outside [%v,%v]", v, xmin, xmax)
		}
	}
}

func TestParetoHeavyTail(t *testing.T) {
	t.Parallel()
	// With alpha=1.2 a non-trivial share of samples should exceed 5*xmin,
	// distinguishing it from e.g. an exponential with similar median.
	r := NewRand(5, 5)
	big := 0
	const n = 50_000
	for i := 0; i < n; i++ {
		if Pareto(r, 1.2, 10, 1e6) > 50 {
			big++
		}
	}
	frac := float64(big) / n
	if frac < 0.05 || frac > 0.3 {
		t.Fatalf("tail fraction = %v, want within (0.05, 0.3)", frac)
	}
}

func TestTruncNormal(t *testing.T) {
	t.Parallel()
	r := NewRand(3, 1)
	for i := 0; i < 20_000; i++ {
		v := TruncNormal(r, 0, 10, -5, 5)
		if v < -5 || v > 5 {
			t.Fatalf("TruncNormal out of range: %v", v)
		}
	}
}

func TestTrapezoidArea(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		xs   []float64
		ys   []float64
		want float64
	}{
		{"unit square", []float64{0, 1}, []float64{1, 1}, 1},
		{"triangle", []float64{0, 1}, []float64{0, 1}, 0.5},
		{"diagonal roc", []float64{0, 0.5, 1}, []float64{0, 0.5, 1}, 0.5},
		{"unsorted input", []float64{1, 0, 0.5}, []float64{1, 0, 0.5}, 0.5},
		{"degenerate", []float64{0}, []float64{1}, 0},
		{"mismatched", []float64{0, 1}, []float64{1}, 0},
		{"step", []float64{0, 0, 1}, []float64{0, 1, 1}, 1},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			got := TrapezoidArea(tt.xs, tt.ys)
			if math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("area = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestTrapezoidAreaMonotone(t *testing.T) {
	t.Parallel()
	// Property: for y in [0,1] over x in [0,1], area is within [0,1].
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			a := math.Abs(v)
			xs[i] = a - math.Floor(a) // frac in [0,1)
			ys[i] = math.Abs(math.Sin(v))
		}
		area := TrapezoidArea(xs, ys)
		return area >= 0 && area <= 1.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	t.Parallel()
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Mean-3) > 1e-12 {
		t.Errorf("mean = %v, want 3", s.Mean)
	}
	if math.Abs(s.P50-3) > 1e-12 {
		t.Errorf("p50 = %v, want 3", s.P50)
	}
	wantSD := math.Sqrt(2.5)
	if math.Abs(s.Stddev-wantSD) > 1e-12 {
		t.Errorf("stddev = %v, want %v", s.Stddev, wantSD)
	}
}

func TestSummarizeEdge(t *testing.T) {
	t.Parallel()
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.P50 != 7 || s.P99 != 7 || s.Stddev != 0 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	t.Parallel()
	s := Summarize([]float64{0, 10})
	if math.Abs(s.P50-5) > 1e-12 {
		t.Fatalf("p50 of {0,10} = %v, want 5", s.P50)
	}
	if math.Abs(s.P90-9) > 1e-12 {
		t.Fatalf("p90 of {0,10} = %v, want 9", s.P90)
	}
}
