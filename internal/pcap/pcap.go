// Package pcap reads and writes classic libpcap capture files
// (the pre-pcapng format every 802.11 monitoring toolchain emits).
// Both microsecond- and nanosecond-resolution magics and both byte
// orders are supported on read; writes use the native microsecond
// little-endian form, which matches the paper's Python/pcap tooling.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Link types relevant to 802.11 monitoring.
const (
	// LinkTypeIEEE80211 is raw 802.11 frames without capture metadata.
	LinkTypeIEEE80211 = 105
	// LinkTypePrism is 802.11 preceded by a Prism monitoring header.
	LinkTypePrism = 119
	// LinkTypeRadiotap is 802.11 preceded by a radiotap header — the
	// format this project writes and the paper's captures use.
	LinkTypeRadiotap = 127
)

const (
	magicMicros        = 0xa1b2c3d4
	magicNanos         = 0xa1b23c4d
	magicMicrosSwapped = 0xd4c3b2a1
	magicNanosSwapped  = 0x4d3cb2a1

	// DefaultSnapLen is the snapshot length written in new file headers.
	DefaultSnapLen = 65535
)

// Errors.
var (
	ErrBadMagic  = errors.New("pcap: unrecognised magic number")
	ErrTruncated = errors.New("pcap: truncated file")
)

// Packet is one captured record.
type Packet struct {
	// Time is the capture timestamp.
	Time time.Time
	// Data is the captured bytes (link-type dependent payload).
	Data []byte
	// OrigLen is the original packet length on the medium; equal to
	// len(Data) unless the capture truncated the packet.
	OrigLen int
}

// Writer emits a pcap stream.
type Writer struct {
	w        *bufio.Writer
	linkType uint32
	wroteHdr bool
}

// NewWriter creates a Writer targeting w with the given link type.
// The file header is written lazily on the first packet (or Flush).
func NewWriter(w io.Writer, linkType uint32) *Writer {
	return &Writer{w: bufio.NewWriter(w), linkType: linkType}
}

func (w *Writer) writeHeader() error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:8], 4) // version minor
	binary.LittleEndian.PutUint32(hdr[16:20], DefaultSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], w.linkType)
	_, err := w.w.Write(hdr[:])
	w.wroteHdr = true
	return err
}

// WritePacket appends one record.
func (w *Writer) WritePacket(p Packet) error {
	if !w.wroteHdr {
		if err := w.writeHeader(); err != nil {
			return fmt.Errorf("pcap: writing file header: %w", err)
		}
	}
	var rec [16]byte
	sec := p.Time.Unix()
	usec := p.Time.Nanosecond() / 1000
	binary.LittleEndian.PutUint32(rec[0:4], uint32(sec))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(usec))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(p.Data)))
	orig := p.OrigLen
	if orig < len(p.Data) {
		orig = len(p.Data)
	}
	binary.LittleEndian.PutUint32(rec[12:16], uint32(orig))
	if _, err := w.w.Write(rec[:]); err != nil {
		return fmt.Errorf("pcap: writing record header: %w", err)
	}
	if _, err := w.w.Write(p.Data); err != nil {
		return fmt.Errorf("pcap: writing record data: %w", err)
	}
	return nil
}

// Flush writes any buffered data (and the file header, if no packet has
// been written yet, so that even empty captures are valid files).
func (w *Writer) Flush() error {
	if !w.wroteHdr {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// Reader parses a pcap stream.
type Reader struct {
	r         *bufio.Reader
	byteOrder binary.ByteOrder
	nanos     bool
	linkType  uint32
	snapLen   uint32
}

// NewReader parses the file header and returns a Reader positioned at
// the first record.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: file header: %v", ErrTruncated, err)
	}
	pr := &Reader{r: br}
	magicLE := binary.LittleEndian.Uint32(hdr[0:4])
	switch magicLE {
	case magicMicros:
		pr.byteOrder = binary.LittleEndian
	case magicNanos:
		pr.byteOrder, pr.nanos = binary.LittleEndian, true
	case magicMicrosSwapped:
		pr.byteOrder = binary.BigEndian
	case magicNanosSwapped:
		pr.byteOrder, pr.nanos = binary.BigEndian, true
	default:
		return nil, fmt.Errorf("%w: %#x", ErrBadMagic, magicLE)
	}
	pr.snapLen = pr.byteOrder.Uint32(hdr[16:20])
	pr.linkType = pr.byteOrder.Uint32(hdr[20:24])
	return pr, nil
}

// LinkType returns the capture's link type.
func (r *Reader) LinkType() uint32 { return r.linkType }

// SnapLen returns the capture's snapshot length.
func (r *Reader) SnapLen() uint32 { return r.snapLen }

// Next returns the next record, or io.EOF at clean end of file.
func (r *Reader) Next() (Packet, error) { return r.NextInto(nil) }

// NextInto is Next with a caller-recycled buffer: when buf has the
// capacity for the record, the returned Packet.Data aliases it instead
// of allocating — the streaming reader's steady state. Pass the
// previous packet's Data (resliced to capacity) to amortise the buffer
// across a whole capture.
func (r *Reader) NextInto(buf []byte) (Packet, error) {
	var rec [16]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if err == io.EOF {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("%w: record header: %v", ErrTruncated, err)
	}
	sec := int64(r.byteOrder.Uint32(rec[0:4]))
	sub := int64(r.byteOrder.Uint32(rec[4:8]))
	incl := r.byteOrder.Uint32(rec[8:12])
	orig := r.byteOrder.Uint32(rec[12:16])
	// Bound the allocation before trusting incl: a corrupt or hostile
	// header must not make a 4 GiB buffer out of 16 bytes of input.
	const maxRecord = 1 << 26
	if incl > maxRecord || (incl > r.snapLen && r.snapLen > 0 && incl > DefaultSnapLen) {
		return Packet{}, fmt.Errorf("pcap: implausible record length %d", incl)
	}
	var data []byte
	if int(incl) <= cap(buf) {
		data = buf[:incl]
	} else {
		data = make([]byte, incl)
	}
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Packet{}, fmt.Errorf("%w: record body: %v", ErrTruncated, err)
	}
	ns := sub * 1000
	if r.nanos {
		ns = sub
	}
	return Packet{
		Time:    time.Unix(sec, ns).UTC(),
		Data:    data,
		OrigLen: int(orig),
	}, nil
}

// ReadAll drains the stream into a slice. Useful for tests and small
// captures; large traces should iterate Next.
func (r *Reader) ReadAll() ([]Packet, error) {
	var pkts []Packet
	for {
		p, err := r.Next()
		if err == io.EOF {
			return pkts, nil
		}
		if err != nil {
			return pkts, err
		}
		pkts = append(pkts, p)
	}
}
