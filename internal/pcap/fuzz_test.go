package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"
)

// fuzzSeedCapture builds a small well-formed capture to mutate from.
func fuzzSeedCapture() []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRadiotap)
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 4; i++ {
		_ = w.WritePacket(Packet{
			Time:    base.Add(time.Duration(i) * 1500 * time.Microsecond),
			Data:    bytes.Repeat([]byte{byte(i + 1)}, 20+7*i),
			OrigLen: 20 + 7*i,
		})
	}
	_ = w.Flush()
	return buf.Bytes()
}

// FuzzReader hammers the pcap parser with arbitrary bytes — this is the
// outermost parser on every capture path, so any input must either
// stream records or error, never panic or allocate unboundedly from a
// hostile length field. Inputs that read to a clean EOF must survive a
// write/re-read round trip with payloads intact.
func FuzzReader(f *testing.F) {
	enc := fuzzSeedCapture()
	var empty bytes.Buffer
	{
		w := NewWriter(&empty, LinkTypeRadiotap)
		_ = w.Flush()
	}
	f.Add(empty.Bytes())
	f.Add(enc)
	// Truncations: header only, mid record header, mid final body.
	f.Add(enc[:24])
	f.Add(enc[:30])
	f.Add(enc[:len(enc)-3])
	// Bad magic.
	f.Add([]byte("this is not a pcap capture at all..."))
	// Byte-swapped and nanosecond magics over the same body.
	swapped := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint32(swapped[0:4], magicMicrosSwapped)
	f.Add(swapped)
	nanos := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint32(nanos[0:4], magicNanos)
	f.Add(nanos)
	// A record header claiming a 4 GiB body.
	huge := append([]byte(nil), enc[:24]...)
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[8:12], 0xFFFFFFF0)
	f.Add(append(huge, rec[:]...))

	f.Fuzz(func(t *testing.T, raw []byte) {
		r, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrTruncated) {
				t.Fatalf("NewReader error is neither bad-magic nor truncated: %v", err)
			}
			return
		}
		var pkts []Packet
		var buf []byte
		for {
			p, err := r.NextInto(buf)
			if err == io.EOF {
				break
			}
			if err != nil {
				return // corrupt tail: fine, as long as it is an error
			}
			if len(p.Data) > 1<<26 {
				t.Fatalf("record of %d bytes slipped past the length check", len(p.Data))
			}
			pkts = append(pkts, Packet{
				Time:    p.Time,
				Data:    append([]byte(nil), p.Data...),
				OrigLen: p.OrigLen,
			})
			buf = p.Data[:cap(p.Data)]
		}
		// Clean EOF: the stream is a valid capture, so writing it back
		// out and re-reading must preserve count and payload bytes.
		var out bytes.Buffer
		w := NewWriter(&out, r.LinkType())
		for _, p := range pkts {
			if err := w.WritePacket(p); err != nil {
				t.Fatalf("rewriting parsed packet: %v", err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		rr, err := NewReader(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("rewritten capture does not parse: %v", err)
		}
		got, err := rr.ReadAll()
		if err != nil {
			t.Fatalf("rewritten capture does not re-read: %v", err)
		}
		if len(got) != len(pkts) {
			t.Fatalf("round trip: %d packets, want %d", len(got), len(pkts))
		}
		for i := range got {
			if !bytes.Equal(got[i].Data, pkts[i].Data) {
				t.Fatalf("packet %d payload drifted on round trip", i)
			}
		}
	})
}
