package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRadiotap)
	base := time.Date(2008, 8, 19, 11, 0, 0, 0, time.UTC)
	want := []Packet{
		{Time: base, Data: []byte("first"), OrigLen: 5},
		{Time: base.Add(137 * time.Microsecond), Data: []byte("second frame"), OrigLen: 12},
		{Time: base.Add(2 * time.Second), Data: bytes.Repeat([]byte{0xaa}, 1500), OrigLen: 1500},
	}
	for _, p := range want {
		if err := w.WritePacket(p); err != nil {
			t.Fatalf("WritePacket: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if r.LinkType() != LinkTypeRadiotap {
		t.Errorf("LinkType = %d, want %d", r.LinkType(), LinkTypeRadiotap)
	}
	if r.SnapLen() != DefaultSnapLen {
		t.Errorf("SnapLen = %d, want %d", r.SnapLen(), DefaultSnapLen)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d packets, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Time.Equal(want[i].Time) {
			t.Errorf("packet %d time = %v, want %v", i, got[i].Time, want[i].Time)
		}
		if !bytes.Equal(got[i].Data, want[i].Data) {
			t.Errorf("packet %d data mismatch", i)
		}
		if got[i].OrigLen != want[i].OrigLen {
			t.Errorf("packet %d origlen = %d, want %d", i, got[i].OrigLen, want[i].OrigLen)
		}
	}
}

func TestMicrosecondPrecisionPreserved(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRadiotap)
	ts := time.Unix(1219143600, 123456000).UTC() // .123456 s
	if err := w.WritePacket(Packet{Time: ts, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Time.Equal(ts) {
		t.Fatalf("time = %v (ns=%d), want %v", p.Time, p.Time.Nanosecond(), ts)
	}
}

func TestEmptyCaptureIsValid(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeIEEE80211)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader on empty capture: %v", err)
	}
	if r.LinkType() != LinkTypeIEEE80211 {
		t.Errorf("LinkType = %d", r.LinkType())
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next on empty capture = %v, want io.EOF", err)
	}
}

func TestReadBigEndian(t *testing.T) {
	t.Parallel()
	// Hand-build a big-endian µs file with one 3-byte packet.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:4], magicMicros)
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], LinkTypePrism)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:4], 1000)
	binary.BigEndian.PutUint32(rec[4:8], 250)
	binary.BigEndian.PutUint32(rec[8:12], 3)
	binary.BigEndian.PutUint32(rec[12:16], 3)
	buf.Write(rec)
	buf.Write([]byte{9, 8, 7})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypePrism {
		t.Errorf("LinkType = %d, want prism", r.LinkType())
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	want := time.Unix(1000, 250_000).UTC()
	if !p.Time.Equal(want) {
		t.Errorf("time = %v, want %v", p.Time, want)
	}
	if !bytes.Equal(p.Data, []byte{9, 8, 7}) {
		t.Errorf("data = %v", p.Data)
	}
}

func TestReadNanosecondMagic(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], magicNanos)
	binary.LittleEndian.PutUint32(hdr[16:20], 65535)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeRadiotap)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[0:4], 7)
	binary.LittleEndian.PutUint32(rec[4:8], 999_999_999)
	binary.LittleEndian.PutUint32(rec[8:12], 1)
	binary.LittleEndian.PutUint32(rec[12:16], 1)
	buf.Write(rec)
	buf.WriteByte(0xff)

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	want := time.Unix(7, 999_999_999).UTC()
	if !p.Time.Equal(want) {
		t.Errorf("time = %v, want %v", p.Time, want)
	}
}

func TestBadMagic(t *testing.T) {
	t.Parallel()
	buf := bytes.NewReader(make([]byte, 24)) // zero magic
	if _, err := NewReader(buf); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	t.Parallel()
	buf := bytes.NewReader(make([]byte, 10))
	if _, err := NewReader(buf); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRadiotap)
	if err := w.WritePacket(Packet{Time: time.Unix(0, 0), Data: []byte("abcdef")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Cut inside the record body.
	r, err := NewReader(bytes.NewReader(full[:len(full)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("body cut: err = %v, want ErrTruncated", err)
	}

	// Cut inside the record header.
	r, err = NewReader(bytes.NewReader(full[:24+8]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("header cut: err = %v, want ErrTruncated", err)
	}
}

func TestOrigLenDefaultsToDataLen(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRadiotap)
	if err := w.WritePacket(Packet{Time: time.Unix(1, 0), Data: []byte("xyz")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p.OrigLen != 3 {
		t.Fatalf("OrigLen = %d, want 3", p.OrigLen)
	}
}

func TestManyPackets(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRadiotap)
	base := time.Unix(1_219_143_600, 0)
	const n = 5000
	for i := 0; i < n; i++ {
		p := Packet{Time: base.Add(time.Duration(i) * 731 * time.Microsecond), Data: []byte{byte(i), byte(i >> 8)}}
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	var last time.Time
	for {
		p, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if count > 0 && !p.Time.After(last) {
			t.Fatalf("packet %d not time-ordered", count)
		}
		last = p.Time
		count++
	}
	if count != n {
		t.Fatalf("read %d packets, want %d", count, n)
	}
}
