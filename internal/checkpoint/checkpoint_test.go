package checkpoint_test

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dot11fp/internal/checkpoint"
	"dot11fp/internal/faultinject"
)

// writeString returns a write func emitting s.
func writeString(s string) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := io.WriteString(w, s)
		return err
	}
}

// readAll loads a file's content or fails the test.
func readAll(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return string(b)
}

// loadString is a load func capturing the stream into dst.
func loadString(dst *string) func(io.Reader) error {
	return func(r io.Reader) error {
		b, err := io.ReadAll(r)
		if err != nil {
			return err
		}
		*dst = string(b)
		return nil
	}
}

func TestSaveLoadChain(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "refs.db")
	opts := checkpoint.Options{Generations: 2}

	for i, content := range []string{"gen-a", "gen-b", "gen-c", "gen-d"} {
		if err := checkpoint.Save(path, opts, writeString(content), nil); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	if got := readAll(t, path); got != "gen-d" {
		t.Fatalf("current generation = %q, want gen-d", got)
	}
	if got := readAll(t, checkpoint.GenPath(path, 1)); got != "gen-c" {
		t.Fatalf("generation 1 = %q, want gen-c", got)
	}
	if got := readAll(t, checkpoint.GenPath(path, 2)); got != "gen-b" {
		t.Fatalf("generation 2 = %q, want gen-b", got)
	}
	if _, err := os.Stat(checkpoint.GenPath(path, 3)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("generation 3 should not exist, stat err = %v", err)
	}

	var got string
	gen, err := checkpoint.Load(path, opts, loadString(&got))
	if err != nil || gen != 0 || got != "gen-d" {
		t.Fatalf("Load = gen %d, %q, %v; want 0, gen-d, nil", gen, got, err)
	}

	// Corrupt the current generation: Load falls back to generation 1.
	if err := os.WriteFile(path, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	gen, err = checkpoint.Load(path, opts, func(r io.Reader) error {
		b, rerr := io.ReadAll(r)
		if rerr != nil {
			return rerr
		}
		if string(b) == "torn" {
			return fmt.Errorf("corrupt checkpoint")
		}
		got = string(b)
		return nil
	})
	if err != nil || gen != 1 || got != "gen-c" {
		t.Fatalf("fallback Load = gen %d, %q, %v; want 1, gen-c, nil", gen, got, err)
	}
}

func TestSaveNoGenerations(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "refs.db")
	opts := checkpoint.Options{Generations: -1}
	for _, content := range []string{"one", "two"} {
		if err := checkpoint.Save(path, opts, writeString(content), nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := readAll(t, path); got != "two" {
		t.Fatalf("current = %q, want two", got)
	}
	if _, err := os.Stat(checkpoint.GenPath(path, 1)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("generation 1 should not exist with Generations < 0, stat err = %v", err)
	}
}

func TestSavePreservesPermissions(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "refs.db")
	if err := os.WriteFile(path, []byte("old"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := checkpoint.Save(path, checkpoint.Options{}, writeString("new"), nil); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Mode().Perm(); got != 0o600 {
		t.Fatalf("permissions = %v, want 0600 preserved from the previous checkpoint", got)
	}
}

func TestSaveVerifyFailureLeavesChain(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "refs.db")
	if err := checkpoint.Save(path, checkpoint.Options{}, writeString("good"), nil); err != nil {
		t.Fatal(err)
	}
	err := checkpoint.Save(path, checkpoint.Options{}, writeString("bad"),
		func(io.Reader) error { return fmt.Errorf("header mismatch") })
	if err == nil || !strings.Contains(err.Error(), "verifying") {
		t.Fatalf("Save with failing verify = %v, want verifying error", err)
	}
	if got := readAll(t, path); got != "good" {
		t.Fatalf("current generation = %q after failed verify, want good untouched", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory holds %d entries after failed save, want only the checkpoint (temp cleaned up)", len(ents))
	}
}

func TestSaveVerifyReadsWrittenBytes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "refs.db")
	var seen string
	err := checkpoint.Save(path, checkpoint.Options{}, writeString("payload"), loadString(&seen))
	if err != nil {
		t.Fatal(err)
	}
	if seen != "payload" {
		t.Fatalf("verify saw %q, want payload", seen)
	}
}

// TestSaveCrashBeforeCommit kills the commit rename (rename #2: the
// rotation rename is #1) the way a crash between the two renames
// would: the old checkpoint has already moved to path.1, and Load must
// find it there.
func TestSaveCrashBeforeCommit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "refs.db")
	if err := checkpoint.Save(path, checkpoint.Options{}, writeString("good"), nil); err != nil {
		t.Fatal(err)
	}
	ffs := faultinject.NewFS(nil, faultinject.FSFaults{RenameErrAt: 2})
	opts := checkpoint.Options{FS: ffs}
	err := checkpoint.Save(path, opts, writeString("lost"), nil)
	if !errors.Is(err, faultinject.ErrCrash) {
		t.Fatalf("Save = %v, want ErrCrash", err)
	}
	if ffs.Injected() != 1 {
		t.Fatalf("Injected = %d, want 1", ffs.Injected())
	}
	var got string
	gen, err := checkpoint.Load(path, checkpoint.Options{}, loadString(&got))
	if err != nil || gen != 1 || got != "good" {
		t.Fatalf("Load after crash = gen %d, %q, %v; want 1, good, nil", gen, got, err)
	}
}

func TestSaveWriteFailureLeavesChain(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "refs.db")
	if err := checkpoint.Save(path, checkpoint.Options{}, writeString("good"), nil); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		faults faultinject.FSFaults
		want   error
	}{
		{"enospc-write", faultinject.FSFaults{WriteErrAt: 1}, syscall.ENOSPC},
		{"partial-write", faultinject.FSFaults{PartialWriteAt: 1}, io.ErrShortWrite},
		{"enospc-sync", faultinject.FSFaults{SyncErrAt: 1}, syscall.ENOSPC},
		{"enospc-create", faultinject.FSFaults{CreateErrAt: 1}, syscall.ENOSPC},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ffs := faultinject.NewFS(nil, tc.faults)
			err := checkpoint.Save(path, checkpoint.Options{FS: ffs}, writeString("lost"), nil)
			if !errors.Is(err, tc.want) {
				t.Fatalf("Save = %v, want %v", err, tc.want)
			}
			if got := readAll(t, path); got != "good" {
				t.Fatalf("current generation = %q after %s, want good untouched", got, tc.name)
			}
		})
	}
}

func TestSaveRetryRecoversTransientFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "refs.db")
	// The first save dies at its data write; the second succeeds.
	ffs := faultinject.NewFS(nil, faultinject.FSFaults{WriteErrAt: 1})
	var slept []time.Duration
	opts := checkpoint.Options{
		FS:      ffs,
		Retries: 2,
		Backoff: time.Millisecond,
		Sleep:   func(d time.Duration) { slept = append(slept, d) },
	}
	if err := checkpoint.SaveRetry(path, opts, writeString("data"), nil); err != nil {
		t.Fatalf("SaveRetry: %v", err)
	}
	if got := readAll(t, path); got != "data" {
		t.Fatalf("content = %q, want data", got)
	}
	if len(slept) != 1 || slept[0] != time.Millisecond {
		t.Fatalf("slept %v, want one 1ms backoff", slept)
	}
}

func TestSaveRetryExhaustedJoinsErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "refs.db")
	// Every attempt fails: the create of attempt 1 is killed by the
	// schedule, and every later attempt by the writer itself.
	ffs := faultinject.NewFS(nil, faultinject.FSFaults{CreateErrAt: 1})
	opts := checkpoint.Options{
		FS:      ffs,
		Retries: 2,
		Backoff: time.Microsecond,
		Sleep:   func(time.Duration) {},
	}
	boom := errors.New("writer exploded")
	err := checkpoint.SaveRetry(path, opts, func(io.Writer) error { return boom }, nil)
	if !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, boom) {
		t.Fatalf("joined error %v should carry both the ENOSPC create and the writer failure", err)
	}
	if _, statErr := os.Stat(path); !errors.Is(statErr, os.ErrNotExist) {
		t.Fatalf("no checkpoint should exist after exhausted retries, stat err = %v", statErr)
	}
}

func TestLoadAllGenerationsFailed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "refs.db")
	gen, err := checkpoint.Load(path, checkpoint.Options{}, func(io.Reader) error { return nil })
	if err == nil {
		t.Fatal("Load of a missing chain should fail")
	}
	if gen != 0 {
		t.Fatalf("gen = %d on failure, want 0", gen)
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("error %v should wrap os.ErrNotExist", err)
	}
}
