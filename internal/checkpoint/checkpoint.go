// Package checkpoint implements generation-chained atomic file
// checkpoints: the durability layer under fingerprintd's reference
// saves (and anything else that must survive crashes, full disks and
// torn writes).
//
// A checkpoint path names a chain of generations: the current file at
// path, the previous good one at path.1, an older one at path.2, and
// so on up to Options.Generations. Save never touches the last good
// generation until the replacement is fully on disk — written to a
// temp file, fsync'd, re-opened and verified — and only then rotates
// the chain and renames the new file into place. A crash, an ENOSPC,
// a partial write or a failure between the rotation renames therefore
// always leaves at least one loadable generation, and Load walks the
// chain newest-first until one loads.
//
// Every filesystem touch goes through the FS interface so fault
// injection (internal/faultinject) can exercise each failure point
// deterministically; OS is the real filesystem.
package checkpoint

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// File is the writable half of FS: what Save needs from a temp file.
// *os.File implements it.
type File interface {
	io.Writer
	Name() string
	Chmod(os.FileMode) error
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations of the checkpoint path, so a
// fault injector can fail any of them on schedule. All methods have
// the semantics of their os counterparts.
type FS interface {
	CreateTemp(dir, pattern string) (File, error)
	Open(name string) (io.ReadCloser, error)
	Stat(name string) (os.FileInfo, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// SyncDir fsyncs a directory, persisting renames within it.
	SyncDir(dir string) error
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) Open(name string) (io.ReadCloser, error)      { return os.Open(name) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close() //fp:closeok read-only directory fd; Sync carries the durability verdict
	return d.Sync()
}

// OS is the real filesystem, the default for a zero Options.
var OS FS = osFS{}

// Options parameterises Save, SaveRetry and Load. The zero value is
// ready to use: real filesystem, one previous generation, three save
// attempts 100 ms apart (doubling).
type Options struct {
	// FS is the filesystem; nil selects OS.
	FS FS
	// Generations is the number of previous generations kept next to
	// the current file (path.1 … path.N). 0 selects 1; negative keeps
	// none (plain atomic replace, no fallback).
	Generations int
	// Retries is the number of extra attempts SaveRetry makes after a
	// failed save. 0 selects 2 (three attempts total); negative
	// disables retrying.
	Retries int
	// Backoff is the delay before the first retry, doubling per
	// attempt up to MaxBackoff. 0 selects 100 ms.
	Backoff time.Duration
	// MaxBackoff caps the doubling. 0 selects 5 s.
	MaxBackoff time.Duration
	// Sleep is the retry delay function, for tests; nil selects
	// time.Sleep.
	Sleep func(time.Duration)
}

func (o Options) fs() FS {
	if o.FS == nil {
		return OS
	}
	return o.FS
}

func (o Options) generations() int {
	switch {
	case o.Generations == 0:
		return 1
	case o.Generations < 0:
		return 0
	}
	return o.Generations
}

func (o Options) retries() int {
	switch {
	case o.Retries == 0:
		return 2
	case o.Retries < 0:
		return 0
	}
	return o.Retries
}

func (o Options) backoff() time.Duration {
	if o.Backoff <= 0 {
		return 100 * time.Millisecond
	}
	return o.Backoff
}

func (o Options) maxBackoff() time.Duration {
	if o.MaxBackoff <= 0 {
		return 5 * time.Second
	}
	return o.MaxBackoff
}

func (o Options) sleep(d time.Duration) {
	if o.Sleep != nil {
		o.Sleep(d)
		return
	}
	time.Sleep(d)
}

// GenPath returns the path of generation gen in path's chain:
// generation 0 is path itself, generation g > 0 is path.g (the g-th
// previous good checkpoint).
func GenPath(path string, gen int) string {
	if gen <= 0 {
		return path
	}
	return fmt.Sprintf("%s.%d", path, gen)
}

// Save writes one checkpoint generation: write streams the content
// into a temp file in path's directory, the file is fsync'd, re-opened
// and passed to verify (nil skips verification), and only then is the
// generation chain rotated (path → path.1 → …) and the temp file
// renamed over path. On any failure the chain is left as it was — the
// last good generation survives everything up to and including a
// failure between the two renames (Load finds it at path.1).
func Save(path string, opts Options, write func(io.Writer) error, verify func(io.Reader) error) error {
	fs := opts.fs()
	dir := filepath.Dir(path)
	tmp, err := fs.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func() { fs.Remove(tmpName) }
	// CreateTemp's 0600 mode would survive the rename and lock other
	// operators out of a previously readable checkpoint. An existing
	// checkpoint keeps its permissions — an operator may have tightened
	// them deliberately — and a fresh one gets ordinary database-file
	// permissions.
	mode := os.FileMode(0o644)
	if info, statErr := fs.Stat(path); statErr == nil {
		mode = info.Mode().Perm()
	}
	if err := tmp.Chmod(mode); err != nil {
		_ = tmp.Close() // already failing; the Chmod error is the one reported
		cleanup()
		return fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	err = write(tmp)
	if err == nil {
		// Flush the data to stable storage before committing any name:
		// a rename alone orders nothing, and a crash right after it
		// could surface the new name over empty blocks.
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: %s: writing: %w", path, err)
	}
	if verify != nil {
		r, err := fs.Open(tmpName)
		if err == nil {
			err = verify(r)
			if cerr := r.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			cleanup()
			return fmt.Errorf("checkpoint: %s: verifying: %w", path, err)
		}
	}
	// The new generation is durable and verified: rotate the chain.
	// Renames of missing generations are fine (a fresh chain), and a
	// failure anywhere below leaves the last good file at path or
	// path.1 — never gone.
	gens := opts.generations()
	for g := gens; g >= 1; g-- {
		if err := fs.Rename(GenPath(path, g-1), GenPath(path, g)); err != nil && !errors.Is(err, os.ErrNotExist) {
			cleanup()
			return fmt.Errorf("checkpoint: %s: rotating generation %d: %w", path, g, err)
		}
	}
	if err := fs.Rename(tmpName, path); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: %s: committing: %w", path, err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("checkpoint: %s: syncing directory: %w", path, err)
	}
	return nil
}

// SaveRetry is Save with bounded retry and doubling backoff on
// failure — the periodic-checkpoint entry point, where a transient
// write failure (full disk being cleaned, NFS hiccup) should cost a
// delay, not the checkpoint.
func SaveRetry(path string, opts Options, write func(io.Writer) error, verify func(io.Reader) error) error {
	backoff := opts.backoff()
	var errs []error
	for attempt := 0; ; attempt++ {
		err := Save(path, opts, write, verify)
		if err == nil {
			return nil
		}
		errs = append(errs, err)
		if attempt >= opts.retries() {
			return errors.Join(errs...)
		}
		opts.sleep(backoff)
		if backoff *= 2; backoff > opts.maxBackoff() {
			backoff = opts.maxBackoff()
		}
	}
}

// Load opens the newest loadable generation in path's chain: path
// first, then path.1 and so on up to Options.Generations. load is
// called once per candidate; any error (missing file, corrupt bytes)
// moves on to the next generation. It returns the generation that
// loaded (0 = current) or, when every generation fails, the joined
// per-generation errors.
func Load(path string, opts Options, load func(r io.Reader) error) (gen int, err error) {
	fs := opts.fs()
	var errs []error
	for g := 0; g <= opts.generations(); g++ {
		p := GenPath(path, g)
		r, err := fs.Open(p)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		lerr := load(r)
		if cerr := r.Close(); lerr == nil {
			lerr = cerr
		}
		if lerr == nil {
			return g, nil
		}
		errs = append(errs, fmt.Errorf("%s: %w", p, lerr))
	}
	return 0, errors.Join(errs...)
}
