package eval

import (
	"math"
	"strings"
	"testing"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/core"
	"dot11fp/internal/dot11"
	"dot11fp/internal/scenario"
)

// synthTrace builds a trace of nDevices highly separable devices: each
// sends data frames with a device-specific size every second for the
// whole duration, so size signatures identify devices perfectly.
func synthTrace(nDevices int, dur time.Duration) *capture.Trace {
	tr := &capture.Trace{Name: "synth"}
	durUs := dur.Microseconds()
	period := int64(500_000)
	var t int64
	for t = 0; t < durUs; t += period {
		for d := 0; d < nDevices; d++ {
			tr.Records = append(tr.Records, capture.Record{
				T:        t + int64(d)*1_000,
				Sender:   dot11.LocalAddr(uint64(d + 1)),
				Receiver: dot11.LocalAddr(9999),
				Class:    dot11.ClassData,
				Size:     100 + d*64, // unique size bin per device
				RateMbps: 54,
				FCSOK:    true,
			})
		}
	}
	return tr
}

func TestRunPerfectSeparation(t *testing.T) {
	t.Parallel()
	tr := synthTrace(6, 20*time.Minute)
	res, err := Run(tr, Spec{
		RefDuration: 5 * time.Minute,
		Window:      5 * time.Minute,
		Config:      core.Config{Param: core.ParamSize},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RefDevices != 6 {
		t.Fatalf("ref devices = %d, want 6", res.RefDevices)
	}
	if res.Candidates == 0 || res.KnownCandidates != res.Candidates {
		t.Fatalf("candidates = %d known = %d", res.Candidates, res.KnownCandidates)
	}
	// Perfectly separable devices: the curve runs along FPR=0 to TPR=1
	// and closes at T=0 where all N references are returned, so the
	// maximum reachable FPR — and hence the AUC — is (N−1)/N. (This is
	// why the paper's AUCs top out near 95% with 158 references.)
	wantAUC := 5.0 / 6.0
	if math.Abs(res.AUC-wantAUC) > 0.02 {
		t.Errorf("AUC = %v, want ≈ %v", res.AUC, wantAUC)
	}
	if got := res.IdentAtFPR[0.01]; got < 0.99 {
		t.Errorf("ident@0.01 = %v, want 1", got)
	}
	if got := res.IdentAtFPR[0.1]; got < 0.99 {
		t.Errorf("ident@0.1 = %v, want 1", got)
	}
}

func TestRunIndistinguishableDevices(t *testing.T) {
	t.Parallel()
	// All devices identical in the measured parameter: identification at
	// low FPR must collapse, AUC must be mediocre.
	tr := &capture.Trace{Name: "clones"}
	durUs := (20 * time.Minute).Microseconds()
	for t0 := int64(0); t0 < durUs; t0 += 500_000 {
		for d := 0; d < 5; d++ {
			tr.Records = append(tr.Records, capture.Record{
				T:        t0 + int64(d)*1_000,
				Sender:   dot11.LocalAddr(uint64(d + 1)),
				Receiver: dot11.LocalAddr(9999),
				Class:    dot11.ClassData,
				Size:     500, // identical for everyone
				RateMbps: 54,
				FCSOK:    true,
			})
		}
	}
	res, err := Run(tr, Spec{
		RefDuration: 5 * time.Minute,
		Window:      5 * time.Minute,
		Config:      core.Config{Param: core.ParamSize},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.IdentAtFPR[0.01]; got > 0.5 {
		t.Errorf("ident@0.01 = %v for indistinguishable devices", got)
	}
	// Returned sets contain all 5 devices, 4 of which are wrong: the
	// similarity FPR is pinned near 0.8, so AUC collapses.
	if res.AUC > 0.5 {
		t.Errorf("AUC = %v, want small for clones", res.AUC)
	}
}

func TestRunErrors(t *testing.T) {
	t.Parallel()
	tr := synthTrace(2, 5*time.Minute)
	if _, err := Run(tr, Spec{Config: core.Config{Param: core.ParamSize}}); err == nil {
		t.Fatal("Run without RefDuration should fail")
	}
}

func TestCurveMonotonicityAndRange(t *testing.T) {
	t.Parallel()
	tr := synthTrace(4, 15*time.Minute)
	res, err := Run(tr, Spec{
		RefDuration: 5 * time.Minute,
		Window:      5 * time.Minute,
		Config:      core.Config{Param: core.ParamSize},
	})
	if err != nil {
		t.Fatal(err)
	}
	prevTPR := -1.0
	for _, p := range res.Curve {
		if p.TPR < 0 || p.TPR > 1 || p.FPR < 0 || p.FPR > 1 {
			t.Fatalf("curve point out of range: %+v", p)
		}
		// Thresholds descend across the grid, so TPR must not decrease.
		if p.TPR < prevTPR-1e-9 {
			t.Fatalf("TPR decreased as threshold fell: %+v", p)
		}
		prevTPR = p.TPR
	}
}

func TestUnknownCandidatesRaiseIdentFPR(t *testing.T) {
	t.Parallel()
	// Devices 1-3 exist from the start; devices 4-5 appear only in the
	// validation period, so every identification of them is wrong.
	tr := &capture.Trace{Name: "churny"}
	durUs := (20 * time.Minute).Microseconds()
	refUs := (5 * time.Minute).Microseconds()
	for t0 := int64(0); t0 < durUs; t0 += 400_000 {
		for d := 0; d < 5; d++ {
			if d >= 3 && t0 < refUs {
				continue
			}
			tr.Records = append(tr.Records, capture.Record{
				T:        t0 + int64(d)*900,
				Sender:   dot11.LocalAddr(uint64(d + 1)),
				Receiver: dot11.LocalAddr(9999),
				Class:    dot11.ClassData,
				Size:     500, // all alike: maximally confusable
				RateMbps: 54,
				FCSOK:    true,
			})
		}
	}
	res, err := Run(tr, Spec{
		RefDuration: 5 * time.Minute,
		Window:      5 * time.Minute,
		Config:      core.Config{Param: core.ParamSize},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RefDevices != 3 {
		t.Fatalf("ref devices = %d, want 3", res.RefDevices)
	}
	if res.KnownCandidates >= res.Candidates {
		t.Fatalf("expected unknown candidates: known=%d total=%d", res.KnownCandidates, res.Candidates)
	}
	// With clones + unknowns, no threshold passes a 1% FPR budget with
	// useful identification.
	if got := res.IdentAtFPR[0.01]; got > 0.4 {
		t.Errorf("ident@0.01 = %v, want near 0", got)
	}
}

func TestEndToEndOnSimulatedOffice(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated office evaluation is slow")
	}
	t.Parallel()
	p := scenario.Office("office-e2e", 31, 14*time.Minute, 14)
	tr, _, err := scenario.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	run := func(param core.Param) *Result {
		res, err := Run(tr, Spec{
			RefDuration: 4 * time.Minute,
			Window:      5 * time.Minute,
			Config:      core.Config{Param: param},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	iat := run(core.ParamInterArrival)
	tt := run(core.ParamTxTime)
	rate := run(core.ParamRate)

	if iat.RefDevices < 7 {
		t.Fatalf("ref devices = %d, want most of the population", iat.RefDevices)
	}
	if iat.KnownCandidates == 0 {
		t.Fatal("no known candidates")
	}
	// The paper's office ranking: transmission time and inter-arrival
	// time clearly beat transmission rate, and both beat chance.
	if iat.AUC <= rate.AUC {
		t.Errorf("inter-arrival AUC %.3f should exceed rate AUC %.3f", iat.AUC, rate.AUC)
	}
	if tt.AUC < 0.4 {
		t.Errorf("office transmission-time AUC = %v, implausibly low", tt.AUC)
	}
	if tt.IdentAtFPR[0.1] <= rate.IdentAtFPR[0.1] {
		t.Errorf("tt ident@0.1 %.3f should exceed rate %.3f", tt.IdentAtFPR[0.1], rate.IdentAtFPR[0.1])
	}
}

func TestDescribeTraceAndTableI(t *testing.T) {
	t.Parallel()
	tr := synthTrace(5, 15*time.Minute)
	tr.Name = "synthetic"
	info := DescribeTrace(tr, 5*time.Minute, core.DefaultConfig(core.ParamSize))
	if info.RefDevices != 5 {
		t.Fatalf("ref devices = %d", info.RefDevices)
	}
	out := FormatTableI([]TraceInfo{info})
	if !strings.Contains(out, "synthetic") || !strings.Contains(out, "None") {
		t.Fatalf("table I output:\n%s", out)
	}
}

func TestFormatTables(t *testing.T) {
	t.Parallel()
	tr := synthTrace(4, 15*time.Minute)
	res, err := Run(tr, Spec{
		RefDuration: 5 * time.Minute,
		Window:      5 * time.Minute,
		Config:      core.Config{Param: core.ParamSize},
	})
	if err != nil {
		t.Fatal(err)
	}
	results := map[string]map[core.Param]*Result{
		"synth": {core.ParamSize: res},
	}
	t2 := FormatTableII(results, []string{"synth"})
	if !strings.Contains(t2, "frame size") || !strings.Contains(t2, "%") {
		t.Fatalf("table II:\n%s", t2)
	}
	if !strings.Contains(t2, "-") { // params without results render as dashes
		t.Fatalf("missing dash for absent params:\n%s", t2)
	}
	t3 := FormatTableIII(results, []string{"synth"})
	if !strings.Contains(t3, "frame size, 0.01") {
		t.Fatalf("table III:\n%s", t3)
	}
	tsv := FormatCurveTSV(res)
	if !strings.Contains(tsv, "AUC") || len(strings.Split(tsv, "\n")) < 10 {
		t.Fatalf("curve TSV too small:\n%s", tsv)
	}
}

func TestFormatHistogramTSV(t *testing.T) {
	t.Parallel()
	sig := core.NewSignature(core.ParamInterArrival, core.DefaultBins(core.ParamInterArrival))
	for i := 0; i < 100; i++ {
		sig.Add(dot11.ClassData, float64(300+10*(i%4)))
	}
	out := FormatHistogramTSV("fig2", sig)
	if !strings.Contains(out, "fig2") || !strings.Contains(out, "305.0") {
		t.Fatalf("histogram TSV:\n%s", out)
	}
}

func TestCountAtLeast(t *testing.T) {
	t.Parallel()
	desc := []float64{0.9, 0.7, 0.7, 0.3, 0.1}
	tests := []struct {
		t    float64
		want int
	}{{1.0, 0}, {0.9, 1}, {0.8, 1}, {0.7, 3}, {0.2, 4}, {0.0, 5}}
	for _, tt := range tests {
		if got := countAtLeast(desc, tt.t); got != tt.want {
			t.Errorf("countAtLeast(%v) = %d, want %d", tt.t, got, tt.want)
		}
	}
}

func TestAUCAnchoredAtOrigin(t *testing.T) {
	t.Parallel()
	// A curve that jumps straight to (0.9, 0.1): trapezoid from the
	// origin gives 0.045, reproducing the paper's tiny conference AUCs.
	curve := []CurvePoint{{Threshold: 1.02, TPR: 0, FPR: 0}, {Threshold: 0.5, TPR: 0.1, FPR: 0.9}}
	got := auc(curve)
	if math.Abs(got-0.045) > 1e-9 {
		t.Fatalf("auc = %v, want 0.045", got)
	}
}
