package eval

import (
	"testing"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/core"
	"dot11fp/internal/scenario"
)

// The MAC-randomization experiment: every client in the office rotates
// to a fresh locally-administered MAC per probe burst, so the training
// prefix and the validation period never share a sender address and
// address-keyed identification collapses to zero. Re-keying the trace
// through the probe-content Clusterer restores stable (canonical)
// identities and identification comes back. The numbers logged here are
// the source of the EXPERIMENTS.md randomization table.
func TestRandomizedOfficeClusteringRecoversIdentification(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized office evaluation is slow")
	}
	t.Parallel()

	const (
		seed     = 37
		duration = 24 * time.Minute
		stations = 12
		refDur   = 5 * time.Minute
		window   = 5 * time.Minute
	)
	fusedParams := []core.Param{core.ParamInterArrival, core.ParamProbeIE, core.ParamProbeCap}

	randTr, _, err := scenario.Build(scenario.RandomizedOffice("rand-e2e", seed, duration, stations))
	if err != nil {
		t.Fatal(err)
	}
	clustered := core.NewClusterer(0).Apply(randTr)
	clustered.Name = "rand-e2e+cluster"

	fused := func(tr *capture.Trace) *Result {
		res, err := RunEnsemble(tr, EnsembleSpec{
			RefDuration: refDur,
			Window:      window,
			Params:      fusedParams,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-18s fused            AUC=%.3f ident@1%%=%.3f ident@10%%=%.3f refs=%d cand=%d known=%d",
			tr.Name, res.AUC, res.IdentAtFPR[0.01], res.IdentAtFPR[0.1],
			res.RefDevices, res.Candidates, res.KnownCandidates)
		return res
	}
	single := func(tr *capture.Trace, p core.Param) *Result {
		res, err := Run(tr, Spec{
			RefDuration: refDur,
			Window:      window,
			Config:      core.DefaultConfig(p),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-18s %-16s AUC=%.3f ident@1%%=%.3f ident@10%%=%.3f refs=%d cand=%d known=%d",
			tr.Name, p, res.AUC, res.IdentAtFPR[0.01], res.IdentAtFPR[0.1],
			res.RefDevices, res.Candidates, res.KnownCandidates)
		return res
	}

	// Randomization on, clustering off: the ~0% baseline. Rotated MACs
	// from the training prefix never recur, so no validation candidate
	// is a known device.
	raw := fused(randTr)
	if raw.KnownCandidates != 0 {
		t.Errorf("raw randomized trace: %d known candidates, want 0 (train/valid senders must be disjoint)",
			raw.KnownCandidates)
	}
	if got := raw.IdentAtFPR[0.1]; got != 0 {
		t.Errorf("raw randomized ident@10%% = %.3f, want 0", got)
	}

	// Randomization on, clustering on: canonical addresses persist
	// across the training/validation split, so identification recovers.
	rec := fused(clustered)
	if rec.RefDevices < stations/2 {
		t.Errorf("clustered refs = %d, want most of the %d-station population", rec.RefDevices, stations)
	}
	if rec.KnownCandidates == 0 {
		t.Fatal("clustered randomized trace has no known candidates")
	}
	if got := rec.IdentAtFPR[0.1]; got < 0.5 {
		t.Errorf("clustered fused ident@10%% = %.3f, want materially above the 0 baseline", got)
	}

	// Per-parameter columns for the report.
	for _, p := range []core.Param{core.ParamInterArrival, core.ParamProbeIE, core.ParamProbeCap, core.ParamProbeSSID} {
		single(clustered, p)
	}

	// Control: the same office without randomization, with and without
	// clustering. Clustering must not damage a well-behaved population —
	// re-keying stable senders is a consistent rename, so the fused
	// numbers should be in the same regime.
	plainTr, _, err := scenario.Build(scenario.Office("plain-e2e", seed, duration, stations))
	if err != nil {
		t.Fatal(err)
	}
	plain := fused(plainTr)
	plainClustered := core.NewClusterer(0).Apply(plainTr)
	plainClustered.Name = "plain-e2e+cluster"
	plainRec := fused(plainClustered)
	if plain.KnownCandidates == 0 || plainRec.KnownCandidates == 0 {
		t.Fatal("plain office lost all known candidates")
	}
	if rec.IdentAtFPR[0.1] < plain.IdentAtFPR[0.1]*0.5 {
		t.Errorf("clustered randomized ident@10%% = %.3f far below the non-randomized %.3f",
			rec.IdentAtFPR[0.1], plain.IdentAtFPR[0.1])
	}
}
