package eval

import (
	"fmt"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/core"
	"dot11fp/internal/dot11"
)

// EnsembleSpec parameterises a combined-parameter evaluation run (the
// paper's future-work extension).
type EnsembleSpec struct {
	RefDuration time.Duration
	Window      time.Duration
	// Params are the member parameters (default configurations).
	Params  []core.Param
	Measure core.Measure
	// Workers caps the matching fan-out (see Spec.Workers).
	Workers int
}

// RunEnsemble evaluates the combined fingerprint with the same
// methodology and metrics as Run. The returned Result has Param == 0;
// TraceName carries an "(ensemble)" suffix.
func RunEnsemble(tr *capture.Trace, spec EnsembleSpec) (*Result, error) {
	if spec.Window <= 0 {
		spec.Window = core.DefaultWindow
	}
	if spec.RefDuration <= 0 {
		return nil, fmt.Errorf("eval: reference duration must be positive")
	}
	if len(spec.Params) == 0 {
		spec.Params = core.Params
	}
	cfgs := make([]core.Config, len(spec.Params))
	for i, p := range spec.Params {
		cfgs[i] = core.DefaultConfig(p)
	}
	ens, err := core.NewEnsemble(spec.Measure, cfgs...)
	if err != nil {
		return nil, err
	}
	train, valid := core.Split(tr, spec.RefDuration)
	if err := ens.Train(train); err != nil {
		return nil, err
	}
	cands := ens.CandidatesIn(valid, spec.Window)

	res := &Result{
		TraceName:  tr.Name + " (ensemble)",
		RefDevices: ens.Len(),
		Candidates: len(cands),
		IdentAtFPR: make(map[float64]float64),
	}
	states := make([]candidate, len(cands))
	core.ForEachIndex(len(cands), spec.Workers, func(_ *core.MatchScratch, i int) {
		states[i] = candidateState(ens.Match(cands[i]), dot11.Addr(cands[i].Addr))
	})
	for i := range states {
		if states[i].known {
			res.KnownCandidates++
		}
	}
	res.Curve = similarityCurve(states)
	res.AUC = auc(res.Curve)
	for _, budget := range []float64{0.01, 0.1} {
		res.IdentAtFPR[budget] = identAt(states, budget)
	}
	return res, nil
}
