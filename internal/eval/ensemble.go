package eval

import (
	"fmt"
	"sort"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/core"
	"dot11fp/internal/dot11"
)

// EnsembleSpec parameterises a combined-parameter evaluation run (the
// paper's future-work extension).
type EnsembleSpec struct {
	RefDuration time.Duration
	Window      time.Duration
	// Params are the member parameters (default configurations).
	Params  []core.Param
	Measure core.Measure
}

// RunEnsemble evaluates the combined fingerprint with the same
// methodology and metrics as Run. The returned Result has Param == 0;
// TraceName carries an "(ensemble)" suffix.
func RunEnsemble(tr *capture.Trace, spec EnsembleSpec) (*Result, error) {
	if spec.Window <= 0 {
		spec.Window = core.DefaultWindow
	}
	if spec.RefDuration <= 0 {
		return nil, fmt.Errorf("eval: reference duration must be positive")
	}
	if len(spec.Params) == 0 {
		spec.Params = core.Params
	}
	cfgs := make([]core.Config, len(spec.Params))
	for i, p := range spec.Params {
		cfgs[i] = core.DefaultConfig(p)
	}
	ens, err := core.NewEnsemble(spec.Measure, cfgs...)
	if err != nil {
		return nil, err
	}
	train, valid := core.Split(tr, spec.RefDuration)
	if err := ens.Train(train); err != nil {
		return nil, err
	}
	cands := ens.CandidatesIn(valid, spec.Window)

	res := &Result{
		TraceName:  tr.Name + " (ensemble)",
		RefDevices: ens.Len(),
		Candidates: len(cands),
		IdentAtFPR: make(map[float64]float64),
	}
	states := make([]candidate, 0, len(cands))
	for _, c := range cands {
		scores := ens.Match(c)
		st := candidate{}
		st.simsDesc = make([]float64, 0, len(scores))
		best := core.Score{Sim: -1}
		for _, sc := range scores {
			st.simsDesc = append(st.simsDesc, sc.Sim)
			if sc.Sim > best.Sim {
				best = sc
			}
			if sc.Addr == dot11.Addr(c.Addr) {
				st.known = true
				st.trueSim = sc.Sim
			}
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(st.simsDesc)))
		st.bestSim = best.Sim
		st.bestRight = st.known && best.Addr == dot11.Addr(c.Addr)
		if st.known {
			res.KnownCandidates++
		}
		states = append(states, st)
	}
	res.Curve = similarityCurve(states)
	res.AUC = auc(res.Curve)
	for _, budget := range []float64{0.01, 0.1} {
		res.IdentAtFPR[budget] = identAt(states, budget)
	}
	return res, nil
}
