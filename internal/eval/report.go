package eval

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/core"
)

// TraceInfo summarises one evaluation trace for Table I.
type TraceInfo struct {
	Name        string
	Total       time.Duration
	RefDuration time.Duration
	Encrypted   bool
	RefDevices  int
}

// DescribeTrace computes the Table-I row of a trace: reference devices
// are senders clearing the minimum-observation rule within the training
// prefix (the paper counts its reference databases the same way).
func DescribeTrace(tr *capture.Trace, refDur time.Duration, cfg core.Config) TraceInfo {
	train, _ := core.Split(tr, refDur)
	refs := core.Extract(train, cfg)
	return TraceInfo{
		Name:        tr.Name,
		Total:       tr.Duration().Round(time.Second),
		RefDuration: refDur,
		Encrypted:   tr.Encrypted,
		RefDevices:  len(refs),
	}
}

// FormatTableI renders Table I (evaluation trace features).
func FormatTableI(infos []TraceInfo) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %12s %12s %12s\n", "", "Total dur.", "Ref. dur.", "Encryption", "# ref. dev.")
	for _, in := range infos {
		enc := "None"
		if in.Encrypted {
			enc = "WPA"
		}
		fmt.Fprintf(&b, "%-16s %12s %12s %12s %12d\n",
			in.Name, in.Total, in.RefDuration, enc, in.RefDevices)
	}
	return b.String()
}

// FormatTableII renders Table II: similarity-test AUC per network
// parameter (rows) and trace (columns).
func FormatTableII(results map[string]map[core.Param]*Result, traceOrder []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s", "Network parameter")
	for _, tn := range traceOrder {
		fmt.Fprintf(&b, " %12s", tn)
	}
	b.WriteByte('\n')
	for _, p := range core.Params {
		fmt.Fprintf(&b, "%-22s", p.String())
		for _, tn := range traceOrder {
			if r, ok := results[tn][p]; ok {
				fmt.Fprintf(&b, " %11.1f%%", r.AUC*100)
			} else {
				fmt.Fprintf(&b, " %12s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTableIII renders Table III: identification ratios at FPR 0.01
// and 0.1 per parameter and trace.
func FormatTableIII(results map[string]map[core.Param]*Result, traceOrder []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s", "Network parameter, FPR")
	for _, tn := range traceOrder {
		fmt.Fprintf(&b, " %12s", tn)
	}
	b.WriteByte('\n')
	for _, p := range core.Params {
		for _, budget := range []float64{0.01, 0.1} {
			fmt.Fprintf(&b, "%-28s", fmt.Sprintf("%s, %.2f", p.String(), budget))
			for _, tn := range traceOrder {
				if r, ok := results[tn][p]; ok {
					fmt.Fprintf(&b, " %11.1f%%", r.IdentAtFPR[budget]*100)
				} else {
					fmt.Fprintf(&b, " %12s", "-")
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FormatCurveTSV dumps a similarity curve (Figure 3 series) as TSV:
// threshold, FPR, TPR — plottable with gnuplot.
func FormatCurveTSV(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s (AUC %.3f)\n", r.TraceName, r.Param, r.AUC)
	b.WriteString("# threshold\tFPR\tTPR\n")
	pts := make([]CurvePoint, len(r.Curve))
	copy(pts, r.Curve)
	sort.Slice(pts, func(i, j int) bool { return pts[i].FPR < pts[j].FPR })
	for _, p := range pts {
		fmt.Fprintf(&b, "%.3f\t%.4f\t%.4f\n", p.Threshold, p.FPR, p.TPR)
	}
	return b.String()
}

// FormatHistogramTSV dumps one signature histogram (Figures 2, 4–8) as
// TSV: bin centre, density.
func FormatHistogramTSV(title string, sig *core.Signature) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n# bin_center\tdensity\n", title)
	for _, class := range sig.Classes() {
		h := sig.Hist(class)
		fmt.Fprintf(&b, "# class %v, %d observations, weight %.3f\n", class, h.Total(), sig.Weight(class))
		freqs := h.Freqs()
		for i, f := range freqs {
			if f == 0 {
				continue
			}
			fmt.Fprintf(&b, "%.1f\t%.5f\n", (float64(i)+0.5)*h.BinWidth(), f)
		}
	}
	return b.String()
}
