package eval

import (
	"math"
	"reflect"
	"testing"
	"time"

	"dot11fp/internal/core"
	"dot11fp/internal/scenario"
)

// resultsIdentical requires two results to agree bit-for-bit: the
// parallel fan-out must not change a single float.
func resultsIdentical(t *testing.T, serial, parallel *Result) {
	t.Helper()
	if serial.RefDevices != parallel.RefDevices ||
		serial.Candidates != parallel.Candidates ||
		serial.KnownCandidates != parallel.KnownCandidates {
		t.Fatalf("counts differ: serial %+v parallel %+v", serial, parallel)
	}
	if len(serial.Curve) != len(parallel.Curve) {
		t.Fatalf("curve lengths differ: %d vs %d", len(serial.Curve), len(parallel.Curve))
	}
	for i := range serial.Curve {
		if serial.Curve[i] != parallel.Curve[i] {
			t.Fatalf("curve point %d differs: %+v vs %+v", i, serial.Curve[i], parallel.Curve[i])
		}
	}
	if math.Float64bits(serial.AUC) != math.Float64bits(parallel.AUC) {
		t.Fatalf("AUC differs: %v vs %v", serial.AUC, parallel.AUC)
	}
	if !reflect.DeepEqual(serial.IdentAtFPR, parallel.IdentAtFPR) {
		t.Fatalf("IdentAtFPR differs: %v vs %v", serial.IdentAtFPR, parallel.IdentAtFPR)
	}
}

func TestRunParallelBitIdenticalToSerial(t *testing.T) {
	t.Parallel()
	// A realistic simulated trace exercises retries, rate churn, window
	// gaps and unknown devices — everything the fan-out must preserve.
	tr, _, err := scenario.Build(scenario.Office("parallel", 11, 24*time.Minute, 12))
	if err != nil {
		t.Fatal(err)
	}
	for _, param := range []core.Param{core.ParamInterArrival, core.ParamSize} {
		spec := Spec{
			RefDuration: 8 * time.Minute,
			Window:      4 * time.Minute,
			Config:      core.DefaultConfig(param),
			Workers:     1,
		}
		serial, err := Run(tr, spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 8, 64} {
			spec.Workers = workers
			par, err := Run(tr, spec)
			if err != nil {
				t.Fatal(err)
			}
			resultsIdentical(t, serial, par)
		}
	}
}

func TestRunEnsembleParallelBitIdenticalToSerial(t *testing.T) {
	t.Parallel()
	tr := synthTrace(6, 20*time.Minute)
	spec := EnsembleSpec{
		RefDuration: 6 * time.Minute,
		Window:      4 * time.Minute,
		Params:      []core.Param{core.ParamSize, core.ParamInterArrival},
		Workers:     1,
	}
	serial, err := RunEnsemble(tr, spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Workers = 8
	par, err := RunEnsemble(tr, spec)
	if err != nil {
		t.Fatal(err)
	}
	resultsIdentical(t, serial, par)
}
