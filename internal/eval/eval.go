// Package eval implements the paper's evaluation methodology (§IV-B,
// §V): split a trace into a training prefix and a validation remainder,
// build the reference database, extract candidate signatures per
// 5-minute detection window, and score the two tests —
//
//   - the similarity test: sweep the threshold T over the returned-set
//     rule sim ≥ T, producing the TPR-vs-FPR similarity curve and its
//     area under the curve (Table II, Figure 3);
//   - the identification test: arg-max matching with an acceptance
//     threshold, reporting the identification ratio at fixed false
//     positive rates (Table III).
//
// Definitions follow the paper exactly: TPR is the fraction of candidate
// devices known to the reference database whose returned set contains
// the true device; FPR (similarity) is the fraction of returned
// reference devices that do not match the candidate; FPR
// (identification) is the fraction of candidates mistakenly identified
// as another device.
package eval

import (
	"fmt"
	"sort"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/core"
	"dot11fp/internal/dot11"
	"dot11fp/internal/engine"
	"dot11fp/internal/stats"
)

// Spec parameterises one experiment run.
type Spec struct {
	// RefDuration is the training prefix length (paper: 1 h or 20 min).
	RefDuration time.Duration
	// Window is the detection window (paper: 5 min).
	Window time.Duration
	// Config is the signature extraction configuration.
	Config core.Config
	// Measure is the histogram similarity (default cosine).
	Measure core.Measure
	// Workers caps the candidate-matching fan-out. Zero selects
	// GOMAXPROCS; 1 forces the serial path. Results are identical for
	// every worker count: each candidate's state is computed
	// independently and stored at its own index, so scheduling cannot
	// reorder or alter anything downstream.
	Workers int
}

// CurvePoint is one threshold sample of the similarity curve.
type CurvePoint struct {
	Threshold float64
	TPR       float64
	FPR       float64
}

// Result summarises one experiment.
type Result struct {
	TraceName  string
	Param      core.Param
	RefDevices int
	// Candidates is the number of (device, window) matching instances;
	// KnownCandidates are those whose device is in the reference DB.
	Candidates      int
	KnownCandidates int
	Curve           []CurvePoint
	AUC             float64
	// IdentAtFPR maps an FPR budget (e.g. 0.01, 0.1) to the best
	// identification ratio achievable within it.
	IdentAtFPR map[float64]float64
}

// candidate is the per-instance matching state reused across thresholds.
type candidate struct {
	known     bool
	trueSim   float64 // similarity to the true reference (if known)
	simsDesc  []float64
	bestSim   float64
	bestRight bool
}

// Run executes the experiment on a trace.
func Run(tr *capture.Trace, spec Spec) (*Result, error) {
	if spec.Window <= 0 {
		spec.Window = core.DefaultWindow
	}
	if spec.RefDuration <= 0 {
		return nil, fmt.Errorf("eval: reference duration must be positive")
	}
	train, valid := core.Split(tr, spec.RefDuration)
	db := core.NewDatabase(spec.Config, spec.Measure)
	if err := db.Train(train); err != nil {
		return nil, fmt.Errorf("eval: training: %w", err)
	}

	// The candidate loop is a thin adapter over the streaming engine:
	// the validation trace is replayed through the push path, and each
	// window's candidates arrive as events carrying their similarity
	// vectors (one extraction and matching code path with live
	// monitoring; scores are bit-identical to matching the batch
	// CandidatesIn output). Both event kinds carry the full vector, so
	// the engine's acceptance threshold is irrelevant here.
	var states []candidate
	collect := engine.SinkFunc(func(ev engine.Event) {
		switch ev := ev.(type) {
		case engine.CandidateMatched:
			states = append(states, candidateState(ev.Scores, ev.Addr))
		case engine.UnknownDevice:
			states = append(states, candidateState(ev.Scores, ev.Addr))
		}
	})
	eng, err := engine.New(db.Config(), db.Compile(), engine.Options{
		Window:  spec.Window,
		Workers: spec.Workers,
		Sink:    collect,
	})
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	eng.PushTrace(valid)
	eng.Close()

	res := &Result{
		TraceName:  tr.Name,
		Param:      spec.Config.Param,
		RefDevices: db.Len(),
		Candidates: len(states),
		IdentAtFPR: make(map[float64]float64),
	}
	for i := range states {
		if states[i].known {
			res.KnownCandidates++
		}
	}

	res.Curve = similarityCurve(states)
	res.AUC = auc(res.Curve)
	for _, budget := range []float64{0.01, 0.1} {
		res.IdentAtFPR[budget] = identAt(states, budget)
	}
	return res, nil
}

// candidateState derives one candidate's matching state from its
// similarity vector. scores may alias a reusable scratch buffer; the
// state copies what it keeps.
func candidateState(scores []core.Score, addr dot11.Addr) candidate {
	st := candidate{}
	st.simsDesc = make([]float64, 0, len(scores))
	best := core.Score{Sim: -1}
	for _, sc := range scores {
		st.simsDesc = append(st.simsDesc, sc.Sim)
		if sc.Sim > best.Sim {
			best = sc
		}
		if sc.Addr == addr {
			st.known = true
			st.trueSim = sc.Sim
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(st.simsDesc)))
	st.bestSim = best.Sim
	st.bestRight = st.known && best.Addr == addr
	return st
}

// thresholdGrid is the sweep used for both tests: fine steps plus an
// above-one anchor where nothing is returned.
func thresholdGrid() []float64 {
	out := make([]float64, 0, 205)
	for t := 1.02; t >= -0.0005; t -= 0.005 {
		out = append(out, t)
	}
	return out
}

// similarityCurve sweeps T and accumulates the paper's TPR/FPR
// definitions for the similarity test.
func similarityCurve(states []candidate) []CurvePoint {
	var curve []CurvePoint
	for _, t := range thresholdGrid() {
		var tprNum, known int
		var returned, wrong int
		for i := range states {
			st := &states[i]
			n := countAtLeast(st.simsDesc, t)
			returned += n
			w := n
			if st.known {
				known++
				if st.trueSim >= t {
					tprNum++
					w--
				}
			}
			wrong += w
		}
		p := CurvePoint{Threshold: t}
		if known > 0 {
			p.TPR = float64(tprNum) / float64(known)
		}
		if returned > 0 {
			p.FPR = float64(wrong) / float64(returned)
		}
		curve = append(curve, p)
	}
	return curve
}

// countAtLeast counts entries ≥ t in a descending-sorted slice.
func countAtLeast(desc []float64, t float64) int {
	lo, hi := 0, len(desc)
	for lo < hi {
		mid := (lo + hi) / 2
		if desc[mid] >= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// auc integrates TPR over FPR, anchoring the curve at the origin (the
// empty-return threshold).
func auc(curve []CurvePoint) float64 {
	xs := make([]float64, 0, len(curve)+1)
	ys := make([]float64, 0, len(curve)+1)
	xs = append(xs, 0)
	ys = append(ys, 0)
	for _, p := range curve {
		xs = append(xs, p.FPR)
		ys = append(ys, p.TPR)
	}
	return stats.TrapezoidArea(xs, ys)
}

// identAt returns the best identification ratio achievable with
// identification FPR within the budget, sweeping the acceptance
// threshold on the winning similarity.
func identAt(states []candidate, budget float64) float64 {
	total := len(states)
	if total == 0 {
		return 0
	}
	best := 0.0
	for _, t := range thresholdGrid() {
		var correct, wrong, known int
		for i := range states {
			st := &states[i]
			if st.known {
				known++
			}
			if st.bestSim < t {
				continue // not identified at this threshold
			}
			if st.bestRight {
				correct++
			} else {
				wrong++
			}
		}
		if known == 0 {
			continue
		}
		fpr := float64(wrong) / float64(total)
		if fpr <= budget {
			if ratio := float64(correct) / float64(known); ratio > best {
				best = ratio
			}
		}
	}
	return best
}
