package dot11fp

import (
	"io"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/core"
	"dot11fp/internal/dot11"
	"dot11fp/internal/engine"
	"dot11fp/internal/eval"
	"dot11fp/internal/pcap"
	"dot11fp/internal/scenario"
	"dot11fp/internal/sim"
)

// Core fingerprinting types.
type (
	// Addr is a 48-bit MAC address.
	Addr = dot11.Addr
	// FrameClass is the frame-type classification signatures histogram over.
	FrameClass = dot11.Class
	// Param selects the network parameter a signature is built from.
	Param = core.Param
	// BinSpec shapes signature histograms.
	BinSpec = core.BinSpec
	// Config parameterises signature extraction.
	Config = core.Config
	// Measure selects the histogram similarity function.
	Measure = core.Measure
	// Signature is a device signature (Definition 1 of the paper).
	Signature = core.Signature
	// Database is a reference database of device signatures.
	Database = core.Database
	// Score is one reference device's similarity to a candidate.
	Score = core.Score
	// CompiledDB is an immutable matching-optimised database snapshot
	// with zero-allocation and batched entry points.
	CompiledDB = core.CompiledDB
	// IndexMode selects whether Compile builds the sublinear match
	// index (see the doc.go "Indexed matching" section).
	IndexMode = core.IndexMode
	// IndexStats describes a compiled snapshot's match index, as
	// surfaced by engine stats and the /metrics endpoint.
	IndexStats = core.IndexStats
	// MatchScratch holds the reusable buffers of the zero-allocation
	// match path; the zero value is ready to use.
	MatchScratch = core.MatchScratch
	// Candidate is a device observed within one detection window.
	Candidate = core.Candidate
	// Record is one captured frame.
	Record = capture.Record
	// Trace is an ordered monitor capture.
	Trace = capture.Trace
)

// The five network parameters of the paper (§III).
const (
	ParamRate         = core.ParamRate
	ParamSize         = core.ParamSize
	ParamMediumAccess = core.ParamMediumAccess
	ParamTxTime       = core.ParamTxTime
	ParamInterArrival = core.ParamInterArrival
)

// The probe-content parameters: address-independent fingerprints of
// the management-frame element list, the handle on MAC-randomizing
// devices (see the doc.go "MAC randomization" section).
const (
	ParamProbeIE   = core.ParamProbeIE
	ParamProbeCap  = core.ParamProbeCap
	ParamProbeSSID = core.ParamProbeSSID
)

// Params lists all five network parameters in the paper's order.
var Params = core.Params

// ContentParams lists the probe-content parameters.
var ContentParams = core.ContentParams

// Measures lists all similarity measures.
var Measures = core.Measures

// Similarity measures.
const (
	MeasureCosine        = core.MeasureCosine
	MeasureIntersection  = core.MeasureIntersection
	MeasureBhattacharyya = core.MeasureBhattacharyya
	MeasureL1            = core.MeasureL1
)

// Match-index modes for Database.SetIndexing / Ensemble.SetIndexing.
const (
	// IndexAuto builds the index once the reference set is large
	// enough for pruning to pay for itself (the default).
	IndexAuto = core.IndexAuto
	// IndexOn always builds the index.
	IndexOn = core.IndexOn
	// IndexOff never builds it — the exhaustive dense baseline.
	IndexOff = core.IndexOff
)

// ParseIndexMode resolves "auto", "on" or "off" — the -index cmd flag.
func ParseIndexMode(s string) (IndexMode, error) { return core.ParseIndexMode(s) }

// DefaultWindow is the paper's 5-minute detection window.
const DefaultWindow = core.DefaultWindow

// DefaultConfig returns the paper's extraction configuration for a
// parameter (default bins, 50-observation minimum).
func DefaultConfig(p Param) Config { return core.DefaultConfig(p) }

// DefaultBins returns the paper-calibrated histogram shape for a parameter.
func DefaultBins(p Param) BinSpec { return core.DefaultBins(p) }

// ParamByShortName resolves "rate", "size", "mtime", "txtime", "iat",
// "probe-ie", "probe-cap" or "probe-ssid".
func ParamByShortName(s string) (Param, error) { return core.ParamByShortName(s) }

// MeasureByName resolves "cosine", "intersection", "bhattacharyya" or "l1".
func MeasureByName(s string) (Measure, error) { return core.MeasureByName(s) }

// NewDatabase creates an empty reference database.
func NewDatabase(cfg Config, m Measure) *Database { return core.NewDatabase(cfg, m) }

// LoadDatabase reads a database previously written with Database.Save.
func LoadDatabase(r io.Reader) (*Database, error) { return core.Load(r) }

// LoadBinaryDatabase reads a database written with Database.SaveBinary —
// the fast checkpoint codec (JSON stays the interop format).
func LoadBinaryDatabase(r io.Reader) (*Database, error) { return core.LoadBinary(r) }

// Binary-codec errors, for errors.Is on LoadBinaryDatabase failures.
var (
	// ErrBinaryDatabase reports corrupt or truncated checkpoint bytes.
	ErrBinaryDatabase = core.ErrBinaryDatabase
	// ErrBinaryVersion reports a checkpoint from a newer format version.
	ErrBinaryVersion = core.ErrBinaryVersion
)

// Extract builds signatures for every sender in a trace under the
// Figure-1 attribution rules.
func Extract(tr *Trace, cfg Config) map[Addr]*Signature { return core.Extract(tr, cfg) }

// ExtractOne builds the signature of a single sender regardless of the
// minimum-observation rule.
func ExtractOne(tr *Trace, sender Addr, cfg Config) *Signature {
	return core.ExtractOne(tr, sender, cfg)
}

// SimilarityOf computes Algorithm 1 for one candidate/reference pair.
func SimilarityOf(candidate, reference *Signature, m Measure) float64 {
	return core.Similarity(candidate, reference, m)
}

// Split divides a trace into a training prefix and the validation rest.
func Split(tr *Trace, refDur time.Duration) (train, validation *Trace) {
	return core.Split(tr, refDur)
}

// Windows partitions a trace into detection windows.
func Windows(tr *Trace, window time.Duration) []*Trace { return core.Windows(tr, window) }

// CandidatesIn extracts the per-window candidate signatures of a
// validation trace.
func CandidatesIn(tr *Trace, window time.Duration, cfg Config) []Candidate {
	return core.CandidatesIn(tr, window, cfg)
}

// ParseAddr parses a textual MAC address in canonical colon, dash or
// bare-hex grouping.
func ParseAddr(s string) (Addr, error) { return dot11.ParseAddr(s) }

// --- multi-parameter fusion --------------------------------------------------

// Fusion types: several network parameters combined into one
// fingerprint (see the doc.go "Multi-parameter fusion" section).
type (
	// Ensemble combines several parameters' reference databases; a
	// candidate's fused similarity is the mean of its per-parameter
	// similarities.
	Ensemble = core.Ensemble
	// CompiledEnsemble is the immutable matching-optimised snapshot of
	// an Ensemble, with zero-allocation and batched entry points.
	CompiledEnsemble = core.CompiledEnsemble
	// EnsembleScratch holds the reusable buffers of the zero-allocation
	// fused match path; the zero value is ready to use.
	EnsembleScratch = core.EnsembleScratch
	// MultiCandidate is a device observed within one detection window,
	// carrying one signature per member parameter.
	MultiCandidate = core.MultiCandidate
)

// MaxEnsembleMembers bounds an ensemble's member count (the paper's
// five parameters plus the three probe-content parameters).
const MaxEnsembleMembers = core.MaxEnsembleMembers

// Clusterer merges MAC-randomizing senders into one logical device by
// probe-content fingerprint, rewriting rotated addresses to a stable
// canonical address before sender-table admission (see the doc.go
// "MAC randomization" section).
type Clusterer = core.Clusterer

// DefaultClusterBindings is NewClusterer's default bound on remembered
// address→device bindings.
const DefaultClusterBindings = core.DefaultClusterBindings

// NewClusterer creates a clustering stage remembering at most
// maxBindings rotated-address bindings (0 = DefaultClusterBindings,
// negative = unbounded).
func NewClusterer(maxBindings int) *Clusterer { return core.NewClusterer(maxBindings) }

// NewEnsemble creates an empty multi-parameter reference ensemble over
// the given extraction configurations (distinct parameters; the zero
// Measure selects cosine for every member).
func NewEnsemble(m Measure, cfgs ...Config) (*Ensemble, error) { return core.NewEnsemble(m, cfgs...) }

// NewEnsembleFrom assembles an ensemble from existing member databases
// (distinct parameters, one shared measure; adopted, not copied).
func NewEnsembleFrom(dbs ...*Database) (*Ensemble, error) { return core.NewEnsembleFrom(dbs...) }

// LoadBinaryEnsemble reads an ensemble written with Ensemble.SaveBinary
// — the versioned multi-database checkpoint container.
func LoadBinaryEnsemble(r io.Reader) (*Ensemble, error) { return core.LoadBinaryEnsemble(r) }

// --- streaming engine --------------------------------------------------------

// Streaming engine types: the push-based form of the pipeline for live
// monitor feeds (see the doc.go "Streaming" section).
type (
	// Engine is the push-based fingerprinting pipeline.
	Engine = engine.Engine
	// EngineOptions parameterises NewEngine.
	EngineOptions = engine.Options
	// EngineStats is a snapshot of an engine's counters.
	EngineStats = engine.Stats
	// Event is the engine's sealed event interface.
	Event = engine.Event
	// WindowClosed summarises one completed detection window.
	WindowClosed = engine.WindowClosed
	// CandidateMatched reports an identified candidate with its scores.
	CandidateMatched = engine.CandidateMatched
	// UnknownDevice reports a candidate no reference accepted.
	UnknownDevice = engine.UnknownDevice
	// CandidateDropped reports a sender below the minimum-observation rule.
	CandidateDropped = engine.CandidateDropped
	// EnrollmentProgress reports a pending sender advancing toward the
	// enrollment horizon.
	EnrollmentProgress = engine.EnrollmentProgress
	// DeviceEnrolled reports a sender promoted into the references by
	// the online trainer.
	DeviceEnrolled = engine.DeviceEnrolled
	// DBSwapped reports a trainer-driven reference hot-swap — exactly
	// one per promotion batch.
	DBSwapped = engine.DBSwapped
	// Sink receives engine events.
	Sink = engine.Sink
	// SinkFunc adapts a function to Sink.
	SinkFunc = engine.SinkFunc
	// ChannelSink forwards engine events into a channel.
	ChannelSink = engine.ChannelSink
	// WindowAccumulator is the incremental window/signature extractor
	// the engine and the batch paths share.
	WindowAccumulator = core.WindowAccumulator
	// WindowResult is one closed window as emitted by WindowAccumulator.
	WindowResult = core.WindowResult
)

// NewEngine creates a streaming engine extracting signatures under cfg
// and matching each closed window against db (nil runs extraction-only;
// install references later with Engine.SetDB).
func NewEngine(cfg Config, db *CompiledDB, opts EngineOptions) (*Engine, error) {
	return engine.New(cfg, db, opts)
}

// NewEnsembleEngine creates a streaming multi-parameter engine: every
// member parameter is extracted in one pass and each closed window is
// fuse-matched against edb (nil runs extraction-only; install
// references later with Engine.SetEnsembleDB). Verdict events carry
// fused plus per-member score vectors.
func NewEnsembleEngine(cfgs []Config, edb *CompiledEnsemble, opts EngineOptions) (*Engine, error) {
	return engine.NewEnsemble(cfgs, edb, opts)
}

// NewChannelSink creates a channel-backed event sink for NewEngine; a
// full buffer backpressures the engine (lossless).
func NewChannelSink(buffer int) *ChannelSink { return engine.NewChannelSink(buffer) }

// NewDroppingChannelSink creates a channel-backed event sink whose full
// buffer drops events (counted in ChannelSink.Dropped) instead of
// stalling the engine.
func NewDroppingChannelSink(buffer int) *ChannelSink { return engine.NewDroppingChannelSink(buffer) }

// --- online enrollment -------------------------------------------------------

// Online-enrollment types: the trainer that closes the loop from live
// streams back into the reference database (see the doc.go "Online
// enrollment" section).
type (
	// Trainer is the online-enrollment subsystem: it accumulates
	// unknown candidates over an enrollment horizon and hot-swaps
	// completed signatures into the engine's references.
	Trainer = engine.Trainer
	// TrainerOptions parameterises NewTrainer / NewTrainerFrom.
	TrainerOptions = engine.TrainerOptions
	// TrainerStats is a snapshot of a trainer's counters.
	TrainerStats = engine.TrainerStats
	// EnrollPolicy selects what happens when a sender completes the
	// horizon (EnrollAuto or EnrollConfirm).
	EnrollPolicy = engine.EnrollPolicy
	// PendingEnrollment is the trainer's view of a not-yet-enrolled
	// sender, handed to the Confirm/Decide callbacks.
	PendingEnrollment = engine.PendingEnrollment
	// EnrollDecision is the three-way verdict of TrainerOptions.Decide
	// (DecideApprove, DecideReject, DecideDefer).
	EnrollDecision = engine.EnrollDecision
	// DBSetter is the hot-swap half of an engine as the trainer sees
	// it; Engine and ShardedEngine both implement it.
	DBSetter = engine.DBSetter
	// EnsembleDBSetter is the hot-swap half of an ensemble engine;
	// Engine and ShardedEngine both implement it.
	EnsembleDBSetter = engine.EnsembleDBSetter
)

// Enrollment policies for TrainerOptions.
const (
	// EnrollAuto promotes every sender that completes the horizon.
	EnrollAuto = engine.EnrollAuto
	// EnrollConfirm asks TrainerOptions.Decide (or Confirm) first.
	EnrollConfirm = engine.EnrollConfirm
)

// Decisions for TrainerOptions.Decide under EnrollConfirm.
const (
	// DecideDefer keeps the sender pending; it is offered again at its
	// next candidate window.
	DecideDefer = engine.DecideDefer
	// DecideApprove promotes the sender into the references now.
	DecideApprove = engine.DecideApprove
	// DecideReject permanently denies the sender.
	DecideReject = engine.DecideReject
)

// NewTrainer creates a cold-start trainer: references begin empty and
// are populated entirely by enrollment. Attach it with
// EngineOptions.Trainer or ShardedOptions.Trainer (the engine's db
// argument must then be nil).
func NewTrainer(cfg Config, m Measure, opts TrainerOptions) *Trainer {
	return engine.NewTrainer(cfg, m, opts)
}

// NewTrainerFrom creates a trainer seeded with an existing database
// (deep-copied): known references keep matching while unknown senders
// enroll around them.
func NewTrainerFrom(seed *Database, opts TrainerOptions) *Trainer {
	return engine.NewTrainerFrom(seed, opts)
}

// NewEnsembleTrainer creates a cold-start trainer for an ensemble
// engine: member signatures are accumulated together and enrolled
// atomically, so a live-enrolled ensemble never holds a
// partially-known device.
func NewEnsembleTrainer(cfgs []Config, m Measure, opts TrainerOptions) (*Trainer, error) {
	return engine.NewEnsembleTrainer(cfgs, m, opts)
}

// NewEnsembleTrainerFrom creates an ensemble trainer seeded with an
// existing ensemble (deep-copied). Seeds holding partially-enrolled
// devices are refused — they can never match and enrollment cannot
// repair them.
func NewEnsembleTrainerFrom(seed *Ensemble, opts TrainerOptions) (*Trainer, error) {
	return engine.NewEnsembleTrainerFrom(seed, opts)
}

// --- sharded engine ----------------------------------------------------------

// Sharded engine types: the concurrent, shard-per-core form of the
// streaming pipeline (see the doc.go "Scaling" section).
type (
	// ShardedEngine hash-partitions records by sender across per-core
	// shards; the merged event stream is identical to Engine's.
	ShardedEngine = engine.Sharded
	// ShardedOptions parameterises NewShardedEngine.
	ShardedOptions = engine.ShardedOptions
	// Backpressure selects the full-queue policy (BackpressureBlock or
	// BackpressureDrop).
	Backpressure = engine.Backpressure
	// SenderLimits bounds per-window sender state (max senders cap +
	// idle eviction), for both Engine and ShardedEngine.
	SenderLimits = core.SenderLimits
	// SenderTable is the bounded per-sender signature accumulator the
	// engines are built on.
	SenderTable = core.SenderTable
)

// Backpressure policies for ShardedOptions.
const (
	// BackpressureBlock makes Push wait for queue space (lossless).
	BackpressureBlock = engine.Block
	// BackpressureDrop discards observations when a shard queue is full,
	// counting them in Stats.DroppedFrames (bounded ingest latency).
	BackpressureDrop = engine.Drop
)

// NewShardedEngine creates a sharded streaming engine (see
// ShardedOptions; Shards 0 selects GOMAXPROCS).
func NewShardedEngine(cfg Config, db *CompiledDB, opts ShardedOptions) (*ShardedEngine, error) {
	return engine.NewSharded(cfg, db, opts)
}

// NewShardedEnsembleEngine creates a sharded multi-parameter engine:
// the router computes every member's parameter value against the
// global inter-arrival context, so the merged fused event stream is
// identical to NewEnsembleEngine's at every shard count.
func NewShardedEnsembleEngine(cfgs []Config, edb *CompiledEnsemble, opts ShardedOptions) (*ShardedEngine, error) {
	return engine.NewShardedEnsemble(cfgs, edb, opts)
}

// --- capture I/O -------------------------------------------------------------

// Capture link types accepted by the pcap I/O functions — the two
// monitor-metadata formats the paper's method reads (§III).
const (
	LinkTypeRadiotap = pcap.LinkTypeRadiotap
	LinkTypePrism    = pcap.LinkTypePrism
)

// ReadPcap parses a radiotap or AVS/Prism pcap stream into a trace.
func ReadPcap(r io.Reader) (*Trace, error) { return capture.ReadPcap(r) }

// PcapStream yields a capture's records one at a time without
// materialising the trace — the engine's input path.
type PcapStream = capture.StreamReader

// ReadPcapStream opens a radiotap or AVS/Prism pcap stream for
// record-at-a-time reading.
func ReadPcapStream(r io.Reader) (*PcapStream, error) { return capture.NewStreamReader(r) }

// Multi-source ingestion: several monitors (pcap files, FIFOs, stdin
// feeds) merged into one record stream.
type (
	// MultiStream merges several record sources into one stream.
	MultiStream = capture.MultiStream
	// RecordSource is any record-at-a-time input (PcapStream implements it).
	RecordSource = capture.RecordSource
	// MergeMode selects the interleaving (MergeByTime or MergeArrival).
	MergeMode = capture.MergeMode
)

// Merge modes for NewMultiStream.
const (
	// MergeByTime interleaves records in ascending timestamp order —
	// deterministic for file inputs.
	MergeByTime = capture.MergeByTime
	// MergeArrival interleaves records as sources produce them — for
	// unsynchronised live feeds.
	MergeArrival = capture.MergeArrival
)

// NewMultiStream merges the given sources; rebase shifts each source's
// clock so its first record lands at offset zero.
func NewMultiStream(mode MergeMode, rebase bool, sources ...RecordSource) *MultiStream {
	return capture.NewMultiStream(mode, rebase, sources...)
}

// --- fault tolerance ---------------------------------------------------------

// Fault-tolerance types: per-source supervision for MultiStream and
// engine health reporting (see the doc.go "Fault tolerance" section).
type (
	// MultiOptions parameterises NewMultiStreamOpts (merge mode, rebase,
	// supervision).
	MultiOptions = capture.MultiOptions
	// Supervisor configures per-source reopen/retry/backoff and the
	// decode-error circuit breaker; the zero value supervises nothing.
	Supervisor = capture.Supervisor
	// SourceEvent is a supervision event (SourceDown or SourceUp).
	SourceEvent = capture.SourceEvent
	// SourceDown reports a source failure — transient (about to retry)
	// or permanent (attempts exhausted).
	SourceDown = capture.SourceDown
	// SourceUp reports a successful source reopen.
	SourceUp = capture.SourceUp
	// SourceStats is one source's supervision counters.
	SourceStats = capture.SourceStats
	// EngineHealth is a snapshot of an engine's supervision state:
	// recovered panics, stalled shards, queue depths.
	EngineHealth = engine.Health
	// EngineHooks are the engines' fault-injection/test points.
	EngineHooks = engine.Hooks
	// ComponentPanicked is the health event for a recovered panic.
	ComponentPanicked = engine.ComponentPanicked
	// ShardStalled is the watchdog's health event for a wedged shard.
	ShardStalled = engine.ShardStalled
	// ShardResumed is the watchdog's all-clear for a stalled shard.
	ShardResumed = engine.ShardResumed
)

// ErrBreakerTripped reports a source failed by its decode-error-rate
// circuit breaker (see Supervisor.BreakerWindow).
var ErrBreakerTripped = capture.ErrBreakerTripped

// NewMultiStreamOpts merges the given sources with full options,
// including per-source supervision.
func NewMultiStreamOpts(opts MultiOptions, sources ...RecordSource) *MultiStream {
	return capture.NewMultiStreamOpts(opts, sources...)
}

// WithCloser attaches a Closer to a RecordSource so MultiStream.Close
// (and supervised reopens) can unblock a source wedged in a blocking
// read — a PcapStream over a FIFO, closed via the underlying file.
func WithCloser(src RecordSource, c io.Closer) RecordSource {
	return capture.WithCloser(src, c)
}

// WritePcap serialises a trace as a standard radiotap pcap stream.
func WritePcap(w io.Writer, tr *Trace) error { return capture.WritePcap(w, tr) }

// WritePcapLinkType serialises a trace with the chosen capture-header
// format (LinkTypeRadiotap or LinkTypePrism).
func WritePcapLinkType(w io.Writer, tr *Trace, linkType uint32) error {
	return capture.WritePcapLinkType(w, tr, linkType)
}

// --- evaluation --------------------------------------------------------------

// Evaluation types.
type (
	// EvalSpec parameterises one evaluation run.
	EvalSpec = eval.Spec
	// EvalResult carries the similarity curve, AUC and identification
	// ratios of one run.
	EvalResult = eval.Result
	// CurvePoint is one threshold sample of a similarity curve.
	CurvePoint = eval.CurvePoint
	// TraceInfo is a Table-I style trace summary.
	TraceInfo = eval.TraceInfo
)

// Evaluate runs the paper's similarity and identification tests on a trace.
func Evaluate(tr *Trace, spec EvalSpec) (*EvalResult, error) { return eval.Run(tr, spec) }

// DescribeTrace computes a trace's Table-I row.
func DescribeTrace(tr *Trace, refDur time.Duration, cfg Config) TraceInfo {
	return eval.DescribeTrace(tr, refDur, cfg)
}

// --- trace synthesis ---------------------------------------------------------

// ScenarioParams configures synthetic office/conference traces.
type ScenarioParams = scenario.Params

// SimStats summarises a simulation run.
type SimStats = sim.Stats

// GenerateOffice synthesises an office-like trace (stable placements,
// WPA, diverse cards and services).
func GenerateOffice(name string, seed uint64, duration time.Duration, stations int) (*Trace, error) {
	tr, _, err := scenario.Build(scenario.Office(name, seed, duration, stations))
	return tr, err
}

// GenerateConference synthesises a conference-like trace (open network,
// mobility, churn, homogeneous fleet).
func GenerateConference(name string, seed uint64, duration time.Duration, stations int) (*Trace, error) {
	tr, _, err := scenario.Build(scenario.Conference(name, seed, duration, stations))
	return tr, err
}

// GenerateScenario synthesises a trace from explicit parameters.
func GenerateScenario(p ScenarioParams) (*Trace, SimStats, error) { return scenario.Build(p) }
